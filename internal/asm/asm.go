// Package asm provides an assembler and disassembler for EVM bytecode.
// It replaces the Solidity toolchain in this repository: the paper's
// Listing 1/2 contracts and all test fixtures are assembled from
// mnemonics into standard EVM bytecode that TinyEVM executes unmodified.
//
// The assembler supports:
//
//   - every opcode mnemonic known to internal/evm (including SENSOR);
//   - PUSH with automatic width selection ("PUSH 0x1234" emits PUSH2),
//     or explicit widths ("PUSH4 0xdeadbeef");
//   - labels (":loop") with forward references, resolved to fixed-width
//     PUSH2 so code layout is stable;
//   - raw data blocks ("DATA 0xdeadbeef") for embedding runtime code;
//   - comments introduced by ';' or '//'.
package asm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"tinyevm/internal/evm"
)

// Errors returned by the assembler.
var (
	ErrUnknownMnemonic = errors.New("asm: unknown mnemonic")
	ErrBadOperand      = errors.New("asm: bad operand")
	ErrUnknownLabel    = errors.New("asm: unknown label")
	ErrDuplicateLabel  = errors.New("asm: duplicate label")
)

// Assemble translates assembly source into bytecode.
func Assemble(src string) ([]byte, error) {
	p := &program{labels: make(map[string]int)}
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := stripComment(raw)
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := p.addLine(fields); err != nil {
			return nil, fmt.Errorf("line %d (%q): %w", ln+1, strings.TrimSpace(line), err)
		}
	}
	return p.link()
}

// MustAssemble assembles or panics; for package-level fixtures and tests.
func MustAssemble(src string) []byte {
	code, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return code
}

func stripComment(line string) string {
	if i := strings.Index(line, ";"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

// item is one element of the unlinked program: either literal bytes or a
// label reference that becomes a PUSH2.
type item struct {
	bytes    []byte
	labelRef string
}

func (it item) size() int {
	if it.labelRef != "" {
		return 3 // PUSH2 + 2 bytes
	}
	return len(it.bytes)
}

type program struct {
	items  []item
	labels map[string]int // label -> item index it precedes
}

func (p *program) addLine(fields []string) error {
	for len(fields) > 0 && strings.HasPrefix(fields[0], ":") {
		label := fields[0][1:]
		if label == "" {
			return fmt.Errorf("%w: empty label", ErrBadOperand)
		}
		if _, dup := p.labels[label]; dup {
			return fmt.Errorf("%w: %q", ErrDuplicateLabel, label)
		}
		p.labels[label] = len(p.items)
		fields = fields[1:]
	}
	if len(fields) == 0 {
		return nil
	}

	mnemonic := strings.ToUpper(fields[0])
	args := fields[1:]

	switch {
	case mnemonic == "DATA":
		if len(args) != 1 {
			return fmt.Errorf("%w: DATA needs one hex operand", ErrBadOperand)
		}
		b, err := parseHexBytes(args[0])
		if err != nil {
			return err
		}
		p.items = append(p.items, item{bytes: b})
		return nil

	case mnemonic == "PUSH" || strings.HasPrefix(mnemonic, "PUSH"):
		return p.addPush(mnemonic, args)

	default:
		op, ok := mnemonicTable[mnemonic]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownMnemonic, mnemonic)
		}
		if len(args) != 0 {
			return fmt.Errorf("%w: %s takes no operand", ErrBadOperand, mnemonic)
		}
		p.items = append(p.items, item{bytes: []byte{byte(op)}})
		return nil
	}
}

func (p *program) addPush(mnemonic string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("%w: PUSH needs one operand", ErrBadOperand)
	}
	arg := args[0]

	// Label reference: "PUSH :loop" (always PUSH2 for stable layout).
	if strings.HasPrefix(arg, ":") {
		if mnemonic != "PUSH" && mnemonic != "PUSH2" {
			return fmt.Errorf("%w: label operands require PUSH or PUSH2", ErrBadOperand)
		}
		p.items = append(p.items, item{labelRef: arg[1:]})
		return nil
	}

	value, err := parseValueBytes(arg)
	if err != nil {
		return err
	}

	if mnemonic == "PUSH" {
		// Auto-size.
		if len(value) == 0 {
			value = []byte{0}
		}
		if len(value) > 32 {
			return fmt.Errorf("%w: literal wider than 32 bytes", ErrBadOperand)
		}
		op := byte(evm.OpPush1) + byte(len(value)-1)
		p.items = append(p.items, item{bytes: append([]byte{op}, value...)})
		return nil
	}

	// Explicit PUSHn.
	n, err := strconv.Atoi(mnemonic[4:])
	if err != nil || n < 1 || n > 32 {
		return fmt.Errorf("%w: %q", ErrUnknownMnemonic, mnemonic)
	}
	if len(value) > n {
		return fmt.Errorf("%w: literal wider than PUSH%d", ErrBadOperand, n)
	}
	padded := make([]byte, n)
	copy(padded[n-len(value):], value)
	op := byte(evm.OpPush1) + byte(n-1)
	p.items = append(p.items, item{bytes: append([]byte{op}, padded...)})
	return nil
}

// link resolves label references and concatenates the program.
func (p *program) link() ([]byte, error) {
	// Compute item offsets.
	offsets := make([]int, len(p.items)+1)
	for i, it := range p.items {
		offsets[i+1] = offsets[i] + it.size()
	}
	labelPos := make(map[string]int, len(p.labels))
	for name, idx := range p.labels {
		labelPos[name] = offsets[idx]
	}

	out := make([]byte, 0, offsets[len(p.items)])
	for _, it := range p.items {
		if it.labelRef == "" {
			out = append(out, it.bytes...)
			continue
		}
		pos, ok := labelPos[it.labelRef]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownLabel, it.labelRef)
		}
		if pos > 0xffff {
			return nil, fmt.Errorf("%w: label %q offset %d exceeds PUSH2", ErrBadOperand, it.labelRef, pos)
		}
		push2 := byte(evm.OpPush1) + 1
		out = append(out, push2, byte(pos>>8), byte(pos))
	}
	return out, nil
}

// parseValueBytes parses a hex (0x...) or decimal literal into minimal
// big-endian bytes.
func parseValueBytes(s string) ([]byte, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return parseHexBytes(s)
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrBadOperand, s)
	}
	if v == 0 {
		return []byte{0}, nil
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte(v)}, buf...)
		v >>= 8
	}
	return buf, nil
}

func parseHexBytes(s string) ([]byte, error) {
	h := strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
	if len(h)%2 == 1 {
		h = "0" + h
	}
	if h == "" {
		return nil, fmt.Errorf("%w: empty hex", ErrBadOperand)
	}
	out := make([]byte, len(h)/2)
	for i := 0; i < len(out); i++ {
		hi, ok1 := hexDigit(h[2*i])
		lo, ok2 := hexDigit(h[2*i+1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("%w: bad hex %q", ErrBadOperand, s)
		}
		out[i] = hi<<4 | lo
	}
	return out, nil
}

func hexDigit(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

// mnemonicTable maps mnemonics to opcodes, built by introspecting the
// evm package so the two can never drift.
var mnemonicTable = buildMnemonics()

func buildMnemonics() map[string]evm.Opcode {
	t := make(map[string]evm.Opcode, 160)
	for b := 0; b < 256; b++ {
		op := evm.Opcode(b)
		if op.Defined() {
			t[op.String()] = op
		}
	}
	// Friendly aliases.
	t["SHA3"] = evm.OpKeccak256
	return t
}

// Disassemble renders bytecode as one instruction per line, with PUSH
// immediates inline. Truncated PUSH immediates at the end of code are
// rendered with a marker, matching execution semantics (zero padding).
func Disassemble(code []byte) string {
	var b strings.Builder
	for pc := 0; pc < len(code); {
		op := evm.Opcode(code[pc])
		fmt.Fprintf(&b, "%04x: %s", pc, op.String())
		n := op.PushBytes()
		if n > 0 {
			end := pc + 1 + n
			trunc := false
			if end > len(code) {
				end = len(code)
				trunc = true
			}
			fmt.Fprintf(&b, " 0x%x", code[pc+1:end])
			if trunc {
				b.WriteString(" (truncated)")
			}
		}
		b.WriteByte('\n')
		pc += 1 + n
	}
	return b.String()
}

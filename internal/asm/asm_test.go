package asm

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"tinyevm/internal/evm"
)

func TestAssembleSimple(t *testing.T) {
	code, err := Assemble(`
		PUSH1 0x02
		PUSH1 0x03
		ADD
		STOP
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x60, 0x02, 0x60, 0x03, 0x01, 0x00}
	if !bytes.Equal(code, want) {
		t.Fatalf("got %x, want %x", code, want)
	}
}

func TestAutoSizedPush(t *testing.T) {
	tests := []struct {
		src  string
		want []byte
	}{
		{"PUSH 0", []byte{0x60, 0x00}},
		{"PUSH 1", []byte{0x60, 0x01}},
		{"PUSH 255", []byte{0x60, 0xff}},
		{"PUSH 256", []byte{0x61, 0x01, 0x00}},
		{"PUSH 0x1234", []byte{0x61, 0x12, 0x34}},
		{"PUSH 0xdeadbeef", []byte{0x63, 0xde, 0xad, 0xbe, 0xef}},
	}
	for _, tc := range tests {
		code, err := Assemble(tc.src)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		if !bytes.Equal(code, tc.want) {
			t.Fatalf("%q: got %x, want %x", tc.src, code, tc.want)
		}
	}
}

func TestExplicitPushPads(t *testing.T) {
	code, err := Assemble("PUSH4 0x01")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x63, 0x00, 0x00, 0x00, 0x01}
	if !bytes.Equal(code, want) {
		t.Fatalf("got %x, want %x", code, want)
	}
	if _, err := Assemble("PUSH1 0x0102"); err == nil {
		t.Fatal("over-wide literal accepted")
	}
}

func TestLabels(t *testing.T) {
	code, err := Assemble(`
		PUSH :end
		JUMP
		PUSH1 0xff   ; skipped
		:end JUMPDEST
		STOP
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: PUSH2 hi lo | JUMP | PUSH1 ff | JUMPDEST | STOP
	//         0     1  2    3      4     5    6          7
	want := []byte{0x61, 0x00, 0x06, 0x56, 0x60, 0xff, 0x5b, 0x00}
	if !bytes.Equal(code, want) {
		t.Fatalf("got %x, want %x", code, want)
	}
}

func TestForwardAndBackwardLabels(t *testing.T) {
	code, err := Assemble(`
		:top JUMPDEST
		PUSH :bottom
		JUMP
		:bottom JUMPDEST
		PUSH :top
		JUMP
	`)
	if err != nil {
		t.Fatal(err)
	}
	// :top at 0, :bottom at 5 (JUMPDEST PUSH2xx xx JUMP = 1+3+1).
	if code[0] != 0x5b || code[5] != 0x5b {
		t.Fatalf("unexpected layout: %x", code)
	}
	if code[1] != 0x61 || code[2] != 0x00 || code[3] != 0x05 {
		t.Fatalf("forward ref wrong: %x", code)
	}
	if code[6] != 0x61 || code[7] != 0x00 || code[8] != 0x00 {
		t.Fatalf("backward ref wrong: %x", code)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		want error
	}{
		{"BOGUS", ErrUnknownMnemonic},
		{"PUSH", ErrBadOperand},
		{"PUSH :missing\nJUMP", ErrUnknownLabel},
		{":dup JUMPDEST\n:dup JUMPDEST", ErrDuplicateLabel},
		{"ADD 5", ErrBadOperand},
		{"DATA zz", ErrBadOperand},
		{"PUSH 0x" + strings.Repeat("ab", 33), ErrBadOperand},
	}
	for _, tc := range cases {
		if _, err := Assemble(tc.src); !errors.Is(err, tc.want) {
			t.Fatalf("%q: got %v, want %v", tc.src, err, tc.want)
		}
	}
}

func TestData(t *testing.T) {
	code, err := Assemble(`
		STOP
		DATA 0xdeadbeef
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x00, 0xde, 0xad, 0xbe, 0xef}
	if !bytes.Equal(code, want) {
		t.Fatalf("got %x, want %x", code, want)
	}
}

func TestSensorMnemonic(t *testing.T) {
	code, err := Assemble(`
		PUSH1 0
		PUSH1 1
		SENSOR
	`)
	if err != nil {
		t.Fatal(err)
	}
	if code[len(code)-1] != byte(evm.OpSensor) {
		t.Fatalf("SENSOR not assembled: %x", code)
	}
}

func TestSha3Alias(t *testing.T) {
	a := MustAssemble("SHA3")
	b := MustAssemble("KECCAK256")
	if !bytes.Equal(a, b) {
		t.Fatal("SHA3 alias mismatch")
	}
}

func TestCommentsBothStyles(t *testing.T) {
	code, err := Assemble(`
		PUSH1 1 ; semicolon comment
		PUSH1 2 // slash comment
		ADD
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x60, 0x01, 0x60, 0x02, 0x01}
	if !bytes.Equal(code, want) {
		t.Fatalf("got %x, want %x", code, want)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		PUSH1 0x2a
		PUSH1 0x00
		MSTORE
		PUSH1 0x20
		PUSH1 0x00
		RETURN
	`
	code := MustAssemble(src)
	dis := Disassemble(code)
	for _, wantLine := range []string{"PUSH1 0x2a", "MSTORE", "RETURN"} {
		if !strings.Contains(dis, wantLine) {
			t.Fatalf("disassembly missing %q:\n%s", wantLine, dis)
		}
	}
	// Reassembling the disassembly (minus offsets) must reproduce code.
	var rebuilt strings.Builder
	for _, line := range strings.Split(strings.TrimSpace(dis), "\n") {
		parts := strings.SplitN(line, ": ", 2)
		rebuilt.WriteString(parts[1] + "\n")
	}
	code2, err := Assemble(rebuilt.String())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(code, code2) {
		t.Fatalf("round trip mismatch:\n%x\n%x", code, code2)
	}
}

func TestDisassembleTruncatedPush(t *testing.T) {
	dis := Disassemble([]byte{0x63, 0x01, 0x02}) // PUSH4 with 2 bytes
	if !strings.Contains(dis, "truncated") {
		t.Fatalf("truncation not flagged:\n%s", dis)
	}
}

func TestAllMnemonicsRoundTrip(t *testing.T) {
	// Every defined opcode's String() must assemble back to itself.
	for b := 0; b < 256; b++ {
		op := evm.Opcode(b)
		if !op.Defined() || op.IsPush() {
			continue
		}
		src := op.String()
		code, err := Assemble(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(code) != 1 || code[0] != byte(op) {
			t.Fatalf("%s assembled to %x", src, code)
		}
	}
}

// Package load is a closed-loop/open-loop load harness that drives a
// TinyEVM gateway the way a smart city would: a fleet of vehicles
// opening payment channels against parking meters and sensor oracles,
// paying in bursts, and settling — while the harness injects the faults
// such a deployment actually sees (clients dying mid-payment, RPC
// replies lost or delayed on the radio link, the daemon itself crashing
// and recovering from its write-ahead log).
//
// The harness has three contention profiles:
//
//   - disjoint: every vehicle pays its own meter — no shared receiver,
//     the embarrassingly-parallel baseline.
//   - hotspot: all vehicles compete for a handful of downtown meters —
//     receiver-side contention.
//   - fanin: every device reports to a single oracle — worst-case
//     fan-in on one node.
//
// Arrivals are either closed-loop (a fixed worker pool, back-pressure
// propagates to the generator) or open-loop Poisson (sessions arrive at
// a configured rate whether or not the system keeps up; overflow is
// counted as shed load, the classic open-vs-closed distinction).
//
// Every fault decision derives deterministically from the seed via
// FaultPlan, so a chaotic run can be replayed exactly. Results come
// back as a Report: per-profile/per-op latency histograms (p50/p95/p99
// via stats.LatencyHist), throughput, a complete error taxonomy, and
// daemon recovery times, with a `go test -bench`-format emitter that
// plugs into cmd/benchreport.
package load

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tinyevm/internal/rpc"
)

// Profile names a contention pattern.
type Profile string

const (
	// ProfileDisjoint pairs each vehicle with its own meter.
	ProfileDisjoint Profile = "disjoint"
	// ProfileHotspot funnels all vehicles onto a few hot meters.
	ProfileHotspot Profile = "hotspot"
	// ProfileFanIn sends every session to one oracle node.
	ProfileFanIn Profile = "fanin"
)

// Profiles lists every profile in canonical order.
func Profiles() []Profile { return []Profile{ProfileDisjoint, ProfileHotspot, ProfileFanIn} }

// ParseProfiles parses a comma-separated profile list ("all" or ""
// selects every profile).
func ParseProfiles(s string) ([]Profile, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return Profiles(), nil
	}
	var out []Profile
	for _, part := range strings.Split(s, ",") {
		p := Profile(strings.TrimSpace(part))
		switch p {
		case ProfileDisjoint, ProfileHotspot, ProfileFanIn:
			out = append(out, p)
		default:
			return nil, fmt.Errorf("load: unknown profile %q (want disjoint, hotspot, fanin)", part)
		}
	}
	return out, nil
}

// Config parameterises a harness run.
type Config struct {
	// URL is the gateway; ignored when the Runner manages a Daemon.
	URL string
	// Targets lists multiple gateway URLs (a cluster of daemons).
	// Vehicles stick to one target by index (vehicle v drives target
	// v mod len(Targets)) so each daemon owns a stable device
	// population; the report breaks latency and errors down per node.
	// Empty: URL (or the managed Daemon) is the single target.
	Targets []string
	// Profiles are run back to back, each for Duration.
	Profiles []Profile
	// Vehicles is the paying-device population.
	Vehicles int
	// HotMeters is the meter count for the hotspot profile.
	HotMeters int
	// Arrival is "closed" (fixed worker pool) or "poisson" (open loop).
	Arrival string
	// Rate is the Poisson session arrival rate per second.
	Rate float64
	// Concurrency is the worker count (closed) or the in-flight session
	// cap (poisson; arrivals beyond it are shed).
	Concurrency int
	// Duration is the measurement window per profile.
	Duration time.Duration
	// Payments per session.
	Payments int
	// Batch groups a session's payments into JSON-RPC 2.0 batch
	// requests of this size, amortizing HTTP round trips (the gateway
	// executes batched entries concurrently). 0 or 1 sends one request
	// per payment.
	Batch int
	// ChannelDeposit is the off-chain deposit of each channel.
	ChannelDeposit uint64
	// Amount is the per-payment amount.
	Amount uint64
	// DepositEvery makes every k-th session lock funds on-chain, which
	// seals a block — so daemon kills land between seals, like the
	// recovery e2e test. 0 disables.
	DepositEvery int
	// Seed drives every random choice (faults, arrivals).
	Seed int64
	// RequestTimeout bounds each RPC attempt; Retries/Backoff configure
	// transport-level retry (see rpc.WithRetry).
	RequestTimeout time.Duration
	Retries        int
	Backoff        time.Duration
	// Faults is the injection config.
	Faults FaultConfig
}

// withDefaults fills zero fields with a small-but-busy city.
func (c Config) withDefaults() Config {
	if len(c.Profiles) == 0 {
		c.Profiles = Profiles()
	}
	if c.Vehicles <= 0 {
		c.Vehicles = 16
	}
	if c.HotMeters <= 0 {
		c.HotMeters = 4
	}
	if c.Arrival == "" {
		c.Arrival = "closed"
	}
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Payments <= 0 {
		c.Payments = 10
	}
	if c.ChannelDeposit == 0 {
		c.ChannelDeposit = 10_000
	}
	if c.Amount == 0 {
		c.Amount = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	return c
}

// Runner drives one harness run.
type Runner struct {
	cfg     Config
	daemon  *Daemon
	plan    *FaultPlan
	col     *Collector
	clients []*rpc.Client // one per target, parallel to cfg.Targets
	nextID  atomic.Uint64
}

// New builds a Runner. daemon is optional: when non-nil the Runner
// targets daemon.URL() and may SIGKILL/restart it per the fault plan;
// when nil, cfg.URL is used and DaemonKills is ignored.
func New(cfg Config, daemon *Daemon) *Runner {
	cfg = cfg.withDefaults()
	total := cfg.Duration * time.Duration(len(cfg.Profiles))
	faults := cfg.Faults
	if daemon == nil {
		faults.DaemonKills = 0
	}
	r := &Runner{
		cfg:    cfg,
		daemon: daemon,
		plan:   NewFaultPlan(cfg.Seed, total, cfg.Payments, faults),
		col:    NewCollector(),
	}
	urls := cfg.Targets
	if daemon != nil {
		urls = []string{daemon.URL()}
	} else if len(urls) == 0 {
		urls = []string{cfg.URL}
	}
	httpClient := newHTTPClient(cfg)
	for _, url := range urls {
		r.clients = append(r.clients, rpc.NewClient(url, httpClient,
			rpc.WithRequestTimeout(cfg.RequestTimeout),
			rpc.WithRetry(cfg.Retries, cfg.Backoff)))
	}
	return r
}

// targetOf maps a vehicle to its sticky target daemon.
func (r *Runner) targetOf(vehicle int) int { return vehicle % len(r.clients) }

// Plan exposes the deterministic fault schedule (for tests and logs).
func (r *Runner) Plan() *FaultPlan { return r.plan }

// Run executes setup, the profile sequence, and the fault timeline,
// and returns the report. Run is single-use.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if err := r.setup(ctx); err != nil {
		return nil, err
	}
	start := time.Now()

	// Fault timeline: daemon kills fire at plan offsets from now, in
	// parallel with the workload. Each recovery is timed and recorded.
	var faultWG sync.WaitGroup
	if r.daemon != nil {
		for _, at := range r.plan.KillTimes() {
			faultWG.Add(1)
			go func(at time.Duration) {
				defer faultWG.Done()
				select {
				case <-ctx.Done():
					return
				case <-time.After(at - time.Since(start)):
				}
				rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
				defer cancel()
				d, err := r.daemon.KillAndRestart(rctx)
				r.col.Recovery(d, err)
			}(at)
		}
	}

	windows := make(map[Profile]time.Duration, len(r.cfg.Profiles))
	for _, profile := range r.cfg.Profiles {
		pStart := time.Now()
		if r.cfg.Arrival == "poisson" {
			r.runOpenLoop(ctx, profile)
		} else {
			r.runClosedLoop(ctx, profile)
		}
		windows[profile] = time.Since(pStart)
		if ctx.Err() != nil {
			break
		}
	}
	faultWG.Wait()
	return r.col.report(r.cfg, time.Since(start), windows), ctx.Err()
}

// setup creates the device population before measurement begins:
// vehicles shared by every profile, plus each profile's meters.
// Re-registering an existing node (a rerun against a persistent
// data-dir) is tolerated.
func (r *Runner) setup(ctx context.Context) error {
	add := func(c *rpc.Client, name string) error {
		_, err := c.AddNode(ctx, name)
		if err != nil && strings.Contains(err.Error(), "already exists") {
			return nil
		}
		return err
	}
	// Each vehicle lives only on its sticky target; meters exist on
	// every target, because channels are daemon-local and a vehicle can
	// only open against a meter its own daemon hosts.
	for v := 0; v < r.cfg.Vehicles; v++ {
		if err := add(r.clients[r.targetOf(v)], vehicleName(v)); err != nil {
			return fmt.Errorf("load: setup vehicle %d: %w", v, err)
		}
	}
	for ti, c := range r.clients {
		for _, profile := range r.cfg.Profiles {
			for m := 0; m < r.meterCount(profile); m++ {
				if err := add(c, r.meterName(profile, m)); err != nil {
					return fmt.Errorf("load: setup %s meter %d on target %d: %w", profile, m, ti, err)
				}
			}
		}
	}
	return nil
}

func vehicleName(v int) string { return fmt.Sprintf("veh-%03d", v) }

func (r *Runner) meterCount(p Profile) int {
	switch p {
	case ProfileDisjoint:
		return r.cfg.Vehicles
	case ProfileHotspot:
		return r.cfg.HotMeters
	default: // fanin
		return 1
	}
}

func (r *Runner) meterName(p Profile, m int) string {
	switch p {
	case ProfileDisjoint:
		return fmt.Sprintf("meter-disjoint-%03d", m)
	case ProfileHotspot:
		return fmt.Sprintf("meter-hot-%02d", m)
	default:
		return "oracle-fanin"
	}
}

// meterFor maps a session to its receiver under the profile.
func (r *Runner) meterFor(p Profile, id uint64) string {
	switch p {
	case ProfileDisjoint:
		return r.meterName(p, int(id)%r.cfg.Vehicles)
	case ProfileHotspot:
		return r.meterName(p, int(id)%r.cfg.HotMeters)
	default:
		return "oracle-fanin"
	}
}

// runClosedLoop runs a fixed pool of workers, each cycling sessions
// until the window closes. Latency under a closed loop reflects
// service time; throughput is bounded by Concurrency.
func (r *Runner) runClosedLoop(ctx context.Context, profile Profile) {
	deadline := time.Now().Add(r.cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shard := r.col.Shard()
			defer shard.Close()
			for time.Now().Before(deadline) && ctx.Err() == nil {
				r.session(ctx, profile, r.nextID.Add(1), shard)
			}
		}()
	}
	wg.Wait()
}

// runOpenLoop generates Poisson arrivals at cfg.Rate. Sessions run
// concurrently up to Concurrency in flight; arrivals that find no free
// slot are shed and counted, not queued — open-loop latency must not
// hide behind an unbounded queue.
func (r *Runner) runOpenLoop(ctx context.Context, profile Profile) {
	deadline := time.Now().Add(r.cfg.Duration)
	rng := rand.New(rand.NewSource(r.cfg.Seed ^ int64(hashString(string(profile)))))
	sem := make(chan struct{}, r.cfg.Concurrency)
	var wg sync.WaitGroup
	next := time.Now()
	for ctx.Err() == nil {
		next = next.Add(time.Duration(rng.ExpFloat64() / r.cfg.Rate * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(time.Until(next)):
		}
		select {
		case sem <- struct{}{}:
			id := r.nextID.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				shard := r.col.Shard()
				defer shard.Close()
				r.session(ctx, profile, id, shard)
			}()
		default:
			r.col.Shed()
		}
	}
	wg.Wait()
}

// hashString folds a string into 64 bits for seed derivation (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// session drives one vehicle through a full channel lifecycle:
// open → pay×N → (maybe on-chain deposit) → cooperative close. A
// fault-plan abort kills the client mid-payment, leaving the channel
// dangling exactly as a crashed device would.
func (r *Runner) session(ctx context.Context, profile Profile, id uint64, shard *Shard) {
	v := int(id) % r.cfg.Vehicles
	vehicle := vehicleName(v)
	meter := r.meterFor(profile, id)
	node := r.targetOf(v)
	client := r.clients[node]

	start := time.Now()
	ch, err := client.OpenChannel(ctx, vehicle, meter, r.cfg.ChannelDeposit, 0)
	shard.Observe(profile, "open", node, time.Since(start), err)
	if err != nil {
		shard.Session(false, false)
		return
	}

	// A fault-plan abort kills the client before payment abortAfter, so
	// only the payments preceding it go out (batched or not).
	abortAfter, abort := r.plan.SessionAbort(id)
	pays := r.cfg.Payments
	if abort && abortAfter < pays {
		pays = abortAfter
	} else {
		abort = false
	}
	if !r.pay(ctx, client, profile, node, vehicle, ch.ID, pays, shard) {
		shard.Session(false, false)
		return
	}
	if abort {
		shard.Session(false, true)
		return // client killed mid-payment: channel stays open
	}

	if r.cfg.DepositEvery > 0 && id%uint64(r.cfg.DepositEvery) == 0 {
		start = time.Now()
		_, err := client.Deposit(ctx, vehicle, r.cfg.Amount)
		shard.Observe(profile, "deposit", node, time.Since(start), err)
		if err != nil {
			shard.Session(false, false)
			return
		}
	}

	start = time.Now()
	_, err = client.CloseChannel(ctx, vehicle, ch.ID)
	shard.Observe(profile, "close", node, time.Since(start), err)
	shard.Session(err == nil, false)
}

// pay sends n payments on one channel, reporting each to the shard,
// and returns false on the first failure. With cfg.Batch > 1 payments
// go out in JSON-RPC batch requests of that size; every entry of a
// batch is observed with the batch's round-trip latency, since that is
// what the client waited for.
func (r *Runner) pay(ctx context.Context, client *rpc.Client, profile Profile, node int, vehicle string, ch uint64, n int, shard *Shard) bool {
	if r.cfg.Batch <= 1 {
		for i := 0; i < n; i++ {
			start := time.Now()
			_, err := client.Pay(ctx, vehicle, ch, r.cfg.Amount)
			shard.Observe(profile, "pay", node, time.Since(start), err)
			if err != nil {
				return false
			}
		}
		return true
	}
	for done := 0; done < n; {
		k := r.cfg.Batch
		if rest := n - done; k > rest {
			k = rest
		}
		b := client.NewBatch()
		for j := 0; j < k; j++ {
			b.Pay(vehicle, ch, r.cfg.Amount, nil)
		}
		start := time.Now()
		errs, err := b.Call(ctx)
		elapsed := time.Since(start)
		if err != nil {
			// Whole-batch (transport) failure: every entry shares it.
			for j := 0; j < k; j++ {
				shard.Observe(profile, "pay", node, elapsed, err)
			}
			return false
		}
		failed := false
		for _, e := range errs {
			shard.Observe(profile, "pay", node, elapsed, e)
			failed = failed || e != nil
		}
		if failed {
			return false
		}
		done += k
	}
	return true
}

// newHTTPClient builds the workload transport, wrapping in chaos when
// any wire fault is configured.
func newHTTPClient(cfg Config) *http.Client {
	if cfg.Faults.DropRate <= 0 && cfg.Faults.DelayRate <= 0 {
		return nil // rpc.NewClient falls back to http.DefaultClient
	}
	return &http.Client{Transport: NewChaosTransport(nil, cfg.Seed, cfg.Faults)}
}

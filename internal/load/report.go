package load

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"tinyevm/internal/rpc"
	"tinyevm/internal/stats"
)

// maxUnknownSamples bounds how many unknown error messages a report
// keeps verbatim for diagnosis.
const maxUnknownSamples = 8

// Classify maps an error onto the harness taxonomy. Typed gateway
// errors keep their rpc.KindOf kebab-case kind; injected faults and
// transport-level failures get harness kinds. Only errors that fit no
// known category classify as "unknown" — their presence fails the CI
// smoke gate, because an unknown error means a behaviour the system's
// error contract does not cover.
func Classify(err error) string {
	if err == nil {
		return ""
	}
	if errors.Is(err, ErrInjectedDrop) {
		return "injected-drop"
	}
	if kind := rpc.KindOf(err); kind != "" {
		return kind
	}
	var rpcErr *rpc.Error
	if errors.As(err, &rpcErr) {
		return "gateway"
	}
	var urlErr *url.Error
	var netErr net.Error
	if errors.As(err, &urlErr) || errors.As(err, &netErr) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return "transport"
	}
	return "unknown"
}

// Collector aggregates measurements from concurrent workers. Workers
// record into private Shards and merge on exit, so the hot path takes
// no locks; Merge on stats.LatencyHist is exact, so sharding loses
// nothing.
type Collector struct {
	mu         sync.Mutex
	ops        map[string]*stats.LatencyHist // "profile/op" → latencies
	errs       map[string]uint64             // taxonomy kind → count
	nodes      map[int]*nodeBucket           // target index → per-node buckets
	unknown    []string
	sessions   uint64
	completed  uint64
	aborted    uint64
	failed     uint64
	shed       uint64
	recoveries []time.Duration
	recoverErr []string
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		ops:   make(map[string]*stats.LatencyHist),
		errs:  make(map[string]uint64),
		nodes: make(map[int]*nodeBucket),
	}
}

// nodeBucket aggregates one target daemon's view: all-op latency plus
// an error taxonomy, so a multi-target run shows which node is slow or
// rejecting (e.g. a follower returning not-leader).
type nodeBucket struct {
	lat  stats.LatencyHist
	errs map[string]uint64
}

func newNodeBucket() *nodeBucket { return &nodeBucket{errs: make(map[string]uint64)} }

// Shard is a worker-local, lock-free view of the collector. Close
// merges it back; a Shard must not be used after Close.
type Shard struct {
	col       *Collector
	ops       map[string]*stats.LatencyHist
	errs      map[string]uint64
	nodes     map[int]*nodeBucket
	unknown   []string
	sessions  uint64
	completed uint64
	aborted   uint64
	failed    uint64
}

// Shard creates a worker-local shard.
func (c *Collector) Shard() *Shard {
	return &Shard{
		col:   c,
		ops:   make(map[string]*stats.LatencyHist),
		errs:  make(map[string]uint64),
		nodes: make(map[int]*nodeBucket),
	}
}

// Observe records one timed operation against target daemon node and
// classifies its error.
func (s *Shard) Observe(profile Profile, op string, node int, d time.Duration, err error) {
	nb := s.nodes[node]
	if nb == nil {
		nb = newNodeBucket()
		s.nodes[node] = nb
	}
	if err == nil {
		key := string(profile) + "/" + op
		h := s.ops[key]
		if h == nil {
			h = &stats.LatencyHist{}
			s.ops[key] = h
		}
		h.ObserveDuration(d)
		nb.lat.ObserveDuration(d)
		return
	}
	kind := Classify(err)
	s.errs[kind]++
	nb.errs[kind]++
	if kind == "unknown" && len(s.unknown) < maxUnknownSamples {
		s.unknown = append(s.unknown, err.Error())
	}
}

// Session accounts one finished session.
func (s *Shard) Session(completed, aborted bool) {
	s.sessions++
	switch {
	case aborted:
		s.aborted++
	case completed:
		s.completed++
	default:
		s.failed++
	}
}

// Close merges the shard into its collector.
func (s *Shard) Close() {
	c := s.col
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, h := range s.ops {
		dst := c.ops[key]
		if dst == nil {
			dst = &stats.LatencyHist{}
			c.ops[key] = dst
		}
		dst.Merge(h)
	}
	for kind, n := range s.errs {
		c.errs[kind] += n
	}
	for node, nb := range s.nodes {
		dst := c.nodes[node]
		if dst == nil {
			dst = newNodeBucket()
			c.nodes[node] = dst
		}
		dst.lat.Merge(&nb.lat)
		for kind, n := range nb.errs {
			dst.errs[kind] += n
		}
	}
	room := maxUnknownSamples - len(c.unknown)
	if room > len(s.unknown) {
		room = len(s.unknown)
	}
	if room > 0 {
		c.unknown = append(c.unknown, s.unknown[:room]...)
	}
	c.sessions += s.sessions
	c.completed += s.completed
	c.aborted += s.aborted
	c.failed += s.failed
}

// Shed counts a session the open-loop generator had to drop because
// every in-flight slot was taken (overload, not an error).
func (c *Collector) Shed() {
	c.mu.Lock()
	c.shed++
	c.mu.Unlock()
}

// Recovery records one daemon kill/restart outcome.
func (c *Collector) Recovery(d time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.recoverErr = append(c.recoverErr, err.Error())
		return
	}
	c.recoveries = append(c.recoveries, d)
}

// OpStats is the per-operation slice of a report.
type OpStats struct {
	Profile string
	Op      string
	Count   uint64
	MeanMS  float64
	P50MS   float64
	P95MS   float64
	P99MS   float64
	PerSec  float64
}

// NodeStats is one target daemon's slice of a report: all-op latency
// plus that node's error taxonomy.
type NodeStats struct {
	Index  int
	Target string
	Count  uint64
	MeanMS float64
	P50MS  float64
	P95MS  float64
	P99MS  float64
	Errors map[string]uint64
}

// Report is the outcome of one harness run.
type Report struct {
	Config   Config
	Elapsed  time.Duration
	Ops      []OpStats
	Nodes    []NodeStats
	Errors   map[string]uint64
	Unknown  []string
	Sessions struct {
		Total, Completed, Aborted, Failed, Shed uint64
	}
	Recoveries       []time.Duration
	RecoveryFailures []string
}

// report assembles the final Report. windows maps each profile to its
// measured wall-clock window, for per-op throughput.
func (c *Collector) report(cfg Config, elapsed time.Duration, windows map[Profile]time.Duration) *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &Report{
		Config:           cfg,
		Elapsed:          elapsed,
		Errors:           make(map[string]uint64, len(c.errs)),
		Unknown:          append([]string(nil), c.unknown...),
		Recoveries:       append([]time.Duration(nil), c.recoveries...),
		RecoveryFailures: append([]string(nil), c.recoverErr...),
	}
	for kind, n := range c.errs {
		r.Errors[kind] = n
	}
	r.Sessions.Total = c.sessions
	r.Sessions.Completed = c.completed
	r.Sessions.Aborted = c.aborted
	r.Sessions.Failed = c.failed
	r.Sessions.Shed = c.shed

	keys := make([]string, 0, len(c.ops))
	for k := range c.ops {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		h := c.ops[key]
		profile, op, _ := strings.Cut(key, "/")
		window := windows[Profile(profile)]
		if window <= 0 {
			window = elapsed
		}
		p50, p95, p99 := h.QuantilesMS()
		r.Ops = append(r.Ops, OpStats{
			Profile: profile,
			Op:      op,
			Count:   h.Count(),
			MeanMS:  h.Mean() / 1e6,
			P50MS:   p50,
			P95MS:   p95,
			P99MS:   p99,
			PerSec:  float64(h.Count()) / window.Seconds(),
		})
	}

	nodeIdx := make([]int, 0, len(c.nodes))
	for i := range c.nodes {
		nodeIdx = append(nodeIdx, i)
	}
	sort.Ints(nodeIdx)
	for _, i := range nodeIdx {
		nb := c.nodes[i]
		target := cfg.URL
		if i < len(cfg.Targets) {
			target = cfg.Targets[i]
		}
		p50, p95, p99 := nb.lat.QuantilesMS()
		ns := NodeStats{
			Index:  i,
			Target: target,
			Count:  nb.lat.Count(),
			MeanMS: nb.lat.Mean() / 1e6,
			P50MS:  p50,
			P95MS:  p95,
			P99MS:  p99,
			Errors: make(map[string]uint64, len(nb.errs)),
		}
		for kind, n := range nb.errs {
			ns.Errors[kind] = n
		}
		r.Nodes = append(r.Nodes, ns)
	}
	return r
}

// Err returns the gate verdict: non-nil when the run hit an error
// outside the taxonomy or a daemon recovery failed. CI's load-smoke
// step fails on exactly these two conditions.
func (r *Report) Err() error {
	if n := r.Errors["unknown"]; n > 0 {
		return fmt.Errorf("load: %d errors outside the taxonomy (first: %s)",
			n, strings.Join(r.Unknown, "; "))
	}
	if len(r.RecoveryFailures) > 0 {
		return fmt.Errorf("load: %d daemon recoveries failed (first: %s)",
			len(r.RecoveryFailures), r.RecoveryFailures[0])
	}
	return nil
}

// String renders a human-readable summary table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load run: %v elapsed, %d sessions (%d completed, %d aborted by fault, %d failed, %d shed)\n",
		r.Elapsed.Round(time.Millisecond), r.Sessions.Total,
		r.Sessions.Completed, r.Sessions.Aborted, r.Sessions.Failed, r.Sessions.Shed)
	if len(r.Ops) > 0 {
		fmt.Fprintf(&b, "%-28s %8s %9s %9s %9s %9s %9s\n",
			"profile/op", "count", "mean-ms", "p50-ms", "p95-ms", "p99-ms", "ops/s")
		for _, op := range r.Ops {
			fmt.Fprintf(&b, "%-28s %8d %9.3f %9.3f %9.3f %9.3f %9.1f\n",
				op.Profile+"/"+op.Op, op.Count, op.MeanMS, op.P50MS, op.P95MS, op.P99MS, op.PerSec)
		}
	}
	// Per-node rows only say something when the run spread across
	// multiple daemons.
	if len(r.Nodes) > 1 {
		for _, ns := range r.Nodes {
			fmt.Fprintf(&b, "node %d (%s): %d ops, mean %.3f ms, p99 %.3f ms",
				ns.Index, ns.Target, ns.Count, ns.MeanMS, ns.P99MS)
			kinds := make([]string, 0, len(ns.Errors))
			for k := range ns.Errors {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			for _, k := range kinds {
				fmt.Fprintf(&b, " %s=%d", k, ns.Errors[k])
			}
			b.WriteByte('\n')
		}
	}
	if len(r.Errors) > 0 {
		kinds := make([]string, 0, len(r.Errors))
		for k := range r.Errors {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		b.WriteString("errors:")
		for _, k := range kinds {
			fmt.Fprintf(&b, " %s=%d", k, r.Errors[k])
		}
		b.WriteByte('\n')
	}
	for _, d := range r.Recoveries {
		fmt.Fprintf(&b, "daemon recovery: %v\n", d.Round(time.Millisecond))
	}
	for _, f := range r.RecoveryFailures {
		fmt.Fprintf(&b, "daemon recovery FAILED: %s\n", f)
	}
	return b.String()
}

// WriteBench emits the report in `go test -bench` output format, the
// lingua franca of cmd/benchreport: one BenchmarkLoadOp line per
// profile/op with latency quantiles and throughput, plus error-count,
// session and recovery lines. benchreport -parse turns this into a
// BENCH_<n>.json artifact; the regression gate ignores BenchmarkLoad*
// names, so load numbers are reported without gating wall time.
func (r *Report) WriteBench(w io.Writer) error {
	for _, op := range r.Ops {
		if _, err := fmt.Fprintf(w,
			"BenchmarkLoadOp/%s/%s %d %.0f ns/op %.3f p50-ms %.3f p95-ms %.3f p99-ms %.1f ops/s\n",
			op.Profile, op.Op, op.Count, op.MeanMS*1e6,
			op.P50MS, op.P95MS, op.P99MS, op.PerSec); err != nil {
			return err
		}
	}
	for _, ns := range r.Nodes {
		var errTotal uint64
		for _, n := range ns.Errors {
			errTotal += n
		}
		if _, err := fmt.Fprintf(w,
			"BenchmarkLoadNode/%d %d %.0f ns/op %.3f p50-ms %.3f p95-ms %.3f p99-ms %d errors\n",
			ns.Index, ns.Count, ns.MeanMS*1e6,
			ns.P50MS, ns.P95MS, ns.P99MS, errTotal); err != nil {
			return err
		}
	}
	kinds := make([]string, 0, len(r.Errors))
	for k := range r.Errors {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "BenchmarkLoadError/%s %d %d count\n",
			k, r.Errors[k], r.Errors[k]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"BenchmarkLoadSessions %d %d completed %d aborted %d failed %d shed\n",
		r.Sessions.Total, r.Sessions.Completed, r.Sessions.Aborted,
		r.Sessions.Failed, r.Sessions.Shed); err != nil {
		return err
	}
	if len(r.Recoveries) > 0 {
		var h stats.LatencyHist
		for _, d := range r.Recoveries {
			h.ObserveDuration(d)
		}
		if _, err := fmt.Fprintf(w,
			"BenchmarkLoadRecovery %d %.0f ns/op %.1f recovery-ms %.1f max-recovery-ms\n",
			h.Count(), h.Mean(), h.Mean()/1e6, h.Max()/1e6); err != nil {
			return err
		}
	}
	return nil
}

package load

import (
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrInjectedDrop is returned by the chaos transport when it discards a
// completed RPC response. The request usually *reached* the gateway —
// only the reply is lost — which is exactly the ambiguity a real client
// on a lossy network faces.
var ErrInjectedDrop = errors.New("load: injected response drop")

// FaultConfig describes which faults the harness injects.
type FaultConfig struct {
	// ClientKillRate is the probability that a session dies mid-payment
	// without closing its channel (a vehicle driving out of radio range,
	// a battery dying). 0 disables.
	ClientKillRate float64
	// DropRate is the probability that an RPC response is discarded
	// after the gateway processed the request.
	DropRate float64
	// DelayRate is the probability that an RPC round trip is delayed by
	// up to DelayMax before being sent.
	DelayRate float64
	// DelayMax bounds an injected delay.
	DelayMax time.Duration
	// DaemonKills is how many SIGKILL+restart cycles the harness drives
	// against the managed daemon during the measurement window. The
	// daemon must have been started with -data-dir for recovery to
	// succeed. 0 disables; ignored when no daemon is managed.
	DaemonKills int
}

func (f FaultConfig) enabled() bool {
	return f.ClientKillRate > 0 || f.DropRate > 0 || f.DelayRate > 0 || f.DaemonKills > 0
}

// FaultPlan is the deterministic schedule derived from (seed, config):
// the same seed always kills the daemon at the same offsets and aborts
// the same sessions after the same payment counts. Determinism makes a
// chaotic run reproducible — re-running with the seed from a failing
// report replays the same fault sequence.
type FaultPlan struct {
	seed     int64
	kill     FaultConfig
	killAt   []time.Duration
	payments int
}

// NewFaultPlan builds the schedule for a measurement window of total
// duration. Daemon kills are spread evenly across the window with
// ±25%-of-slot deterministic jitter so they land between block seals
// rather than on a fixed phase of the workload.
func NewFaultPlan(seed int64, total time.Duration, payments int, f FaultConfig) *FaultPlan {
	p := &FaultPlan{seed: seed, kill: f, payments: payments}
	if f.DaemonKills > 0 && total > 0 {
		rng := rand.New(rand.NewSource(seed))
		slot := total / time.Duration(f.DaemonKills+1)
		for i := 1; i <= f.DaemonKills; i++ {
			jitter := time.Duration((rng.Float64() - 0.5) * float64(slot) / 2)
			p.killAt = append(p.killAt, time.Duration(i)*slot+jitter)
		}
	}
	return p
}

// KillTimes returns the offsets (from measurement start) at which the
// daemon is SIGKILLed.
func (p *FaultPlan) KillTimes() []time.Duration {
	return append([]time.Duration(nil), p.killAt...)
}

// SessionAbort reports whether session id is killed mid-payment and, if
// so, after how many successful payments (in [0, payments)). The
// decision is a pure function of (seed, id), independent of scheduling.
func (p *FaultPlan) SessionAbort(id uint64) (after int, abort bool) {
	if p.kill.ClientKillRate <= 0 || p.payments <= 0 {
		return 0, false
	}
	h := mix(uint64(p.seed) ^ mix(id))
	if float64(h%1e9)/1e9 >= p.kill.ClientKillRate {
		return 0, false
	}
	return int(mix(h) % uint64(p.payments)), true
}

// mix is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// hash used to derive per-session decisions from the seed.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ChaosTransport wraps an http.RoundTripper with seeded response drops
// and delays. Decisions come from a single locked PRNG, so the decision
// *sequence* is deterministic under a fixed seed (which request each
// decision lands on still depends on goroutine scheduling).
type ChaosTransport struct {
	inner http.RoundTripper

	mu  sync.Mutex
	rng *rand.Rand

	dropRate  float64
	delayRate float64
	delayMax  time.Duration
}

// NewChaosTransport wraps inner (nil means http.DefaultTransport).
func NewChaosTransport(inner http.RoundTripper, seed int64, f FaultConfig) *ChaosTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	delayMax := f.DelayMax
	if f.DelayRate > 0 && delayMax <= 0 {
		delayMax = 100 * time.Millisecond
	}
	return &ChaosTransport{
		inner:     inner,
		rng:       rand.New(rand.NewSource(seed)),
		dropRate:  f.DropRate,
		delayRate: f.DelayRate,
		delayMax:  delayMax,
	}
}

// decide draws the next (drop, delay) pair from the seeded stream.
func (t *ChaosTransport) decide() (drop bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dropRate > 0 && t.rng.Float64() < t.dropRate {
		drop = true
	}
	if t.delayRate > 0 && t.rng.Float64() < t.delayRate {
		delay = time.Duration(t.rng.Int63n(int64(t.delayMax) + 1))
	}
	return drop, delay
}

// RoundTrip injects the drawn faults around the real round trip. A
// dropped response is closed and replaced with ErrInjectedDrop *after*
// the request executed, mimicking a reply lost on the wire.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	drop, delay := t.decide()
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	resp, err := t.inner.RoundTrip(req)
	if drop {
		if err == nil {
			resp.Body.Close()
		}
		return nil, ErrInjectedDrop
	}
	return resp, err
}

package load

import (
	"context"
	"fmt"
	"io"
	"net"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"tinyevm/internal/rpc"
)

// Daemon controls a tinyevm-serve child process: start, SIGKILL,
// restart, and readiness probing. It is the harness's handle for
// injecting whole-process crashes and measuring recovery time from the
// write-ahead log.
type Daemon struct {
	// Bin is the path to a built tinyevm-serve binary.
	Bin string
	// Addr is the host:port to listen on (FreeAddr picks one).
	Addr string
	// DataDir is the WAL directory; required for crash recovery.
	DataDir string
	// Provider is the provider node name (default "provider").
	Provider string
	// ExtraArgs are appended to the command line.
	ExtraArgs []string
	// Log receives the child's stderr (nil discards it).
	Log io.Writer

	mu   sync.Mutex
	proc *exec.Cmd
}

// URL returns the gateway base URL.
func (d *Daemon) URL() string { return "http://" + d.Addr }

// Start launches the child process. It does not wait for readiness;
// call WaitReady.
func (d *Daemon) Start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.proc != nil && d.proc.ProcessState == nil {
		return fmt.Errorf("load: daemon already running (pid %d)", d.proc.Process.Pid)
	}
	args := []string{"-addr", d.Addr}
	if d.Provider != "" {
		args = append(args, "-provider", d.Provider)
	}
	if d.DataDir != "" {
		args = append(args, "-data-dir", d.DataDir)
	}
	args = append(args, d.ExtraArgs...)
	proc := exec.Command(d.Bin, args...)
	proc.Stderr = d.Log
	if err := proc.Start(); err != nil {
		return fmt.Errorf("load: starting daemon: %w", err)
	}
	d.proc = proc
	return nil
}

// WaitReady polls the gateway until it answers tinyevm_head or ctx
// expires. The probe client is plain HTTP — chaos faults never delay a
// readiness check, so recovery time measures the daemon, not the noise.
func (d *Daemon) WaitReady(ctx context.Context) error {
	client := rpc.NewClient(d.URL(), nil, rpc.WithRequestTimeout(time.Second))
	for {
		if _, err := client.Head(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("load: daemon at %s not ready: %w", d.Addr, ctx.Err())
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// Kill SIGKILLs the child — no shutdown path runs, exactly like a power
// loss — and reaps it.
func (d *Daemon) Kill() error {
	d.mu.Lock()
	proc := d.proc
	d.mu.Unlock()
	if proc == nil || proc.Process == nil {
		return fmt.Errorf("load: daemon not running")
	}
	if err := proc.Process.Kill(); err != nil {
		return err
	}
	proc.Wait()
	return nil
}

// KillAndRestart crashes the daemon, restarts it, and returns how long
// the restarted process took to answer RPC again (WAL replay plus
// listener setup). This is the recovery-time metric in reports.
func (d *Daemon) KillAndRestart(ctx context.Context) (time.Duration, error) {
	if err := d.Kill(); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := d.Start(); err != nil {
		return 0, err
	}
	if err := d.WaitReady(ctx); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Stop kills a still-running child; safe to call on a dead daemon.
func (d *Daemon) Stop() {
	d.mu.Lock()
	proc := d.proc
	d.mu.Unlock()
	if proc != nil && proc.ProcessState == nil && proc.Process != nil {
		proc.Process.Kill()
		proc.Wait()
	}
}

// BuildServeBinary compiles cmd/tinyevm-serve into dir and returns the
// binary path. repoRoot is the module root ("" means current dir).
func BuildServeBinary(repoRoot, dir string) (string, error) {
	bin := filepath.Join(dir, "tinyevm-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/tinyevm-serve")
	if repoRoot != "" {
		build.Dir = repoRoot
	}
	if out, err := build.CombinedOutput(); err != nil {
		return "", fmt.Errorf("load: building tinyevm-serve: %v\n%s", err, out)
	}
	return bin, nil
}

// FreeAddr asks the kernel for an unused loopback port.
func FreeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

package load

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"tinyevm"
	"tinyevm/internal/rpc"
)

// TestFaultPlanDeterministic is the satellite requirement: the fault
// scheduler must be a pure function of the seed. Two plans built from
// the same inputs agree on every daemon kill time and every
// session-abort decision; a different seed diverges.
func TestFaultPlanDeterministic(t *testing.T) {
	cfg := FaultConfig{ClientKillRate: 0.3, DaemonKills: 3}
	a := NewFaultPlan(42, 10*time.Second, 10, cfg)
	b := NewFaultPlan(42, 10*time.Second, 10, cfg)

	ka, kb := a.KillTimes(), b.KillTimes()
	if len(ka) != 3 || len(kb) != 3 {
		t.Fatalf("kill times = %v / %v, want 3 each", ka, kb)
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("kill[%d]: %v != %v", i, ka[i], kb[i])
		}
		if ka[i] <= 0 || ka[i] >= 10*time.Second {
			t.Fatalf("kill[%d] = %v outside the window", i, ka[i])
		}
	}

	diverged := false
	aborts := 0
	for id := uint64(0); id < 10_000; id++ {
		afterA, abortA := a.SessionAbort(id)
		afterB, abortB := b.SessionAbort(id)
		if afterA != afterB || abortA != abortB {
			t.Fatalf("session %d: (%d,%v) != (%d,%v)", id, afterA, abortA, afterB, abortB)
		}
		if abortA {
			aborts++
			if afterA < 0 || afterA >= 10 {
				t.Fatalf("session %d aborts after %d payments, want [0,10)", id, afterA)
			}
		}
		other := NewFaultPlan(43, 10*time.Second, 10, cfg)
		if oAfter, oAbort := other.SessionAbort(id); oAbort != abortA || oAfter != afterA {
			diverged = true
		}
	}
	// ~30% of 10k sessions abort; the hash must land near the rate.
	if aborts < 2600 || aborts > 3400 {
		t.Fatalf("abort count = %d, want ~3000", aborts)
	}
	if !diverged {
		t.Fatal("seed 43 produced the identical abort schedule to seed 42")
	}
}

func TestFaultPlanDisabled(t *testing.T) {
	p := NewFaultPlan(1, time.Minute, 10, FaultConfig{})
	if len(p.KillTimes()) != 0 {
		t.Fatalf("kill times = %v, want none", p.KillTimes())
	}
	if _, abort := p.SessionAbort(7); abort {
		t.Fatal("abort with zero kill rate")
	}
}

// TestChaosTransportDeterministic pins the decision stream: same seed,
// same (drop, delay) sequence.
func TestChaosTransportDeterministic(t *testing.T) {
	cfg := FaultConfig{DropRate: 0.2, DelayRate: 0.3, DelayMax: 10 * time.Millisecond}
	a := NewChaosTransport(nil, 99, cfg)
	b := NewChaosTransport(nil, 99, cfg)
	drops := 0
	for i := 0; i < 5000; i++ {
		dropA, delayA := a.decide()
		dropB, delayB := b.decide()
		if dropA != dropB || delayA != delayB {
			t.Fatalf("decision %d: (%v,%v) != (%v,%v)", i, dropA, delayA, dropB, delayB)
		}
		if delayA < 0 || delayA > 10*time.Millisecond {
			t.Fatalf("decision %d: delay %v outside [0, DelayMax]", i, delayA)
		}
		if dropA {
			drops++
		}
	}
	if drops < 800 || drops > 1200 {
		t.Fatalf("drops = %d over 5000 draws at rate 0.2, want ~1000", drops)
	}
}

func TestParseProfiles(t *testing.T) {
	all, err := ParseProfiles("all")
	if err != nil || len(all) != 3 {
		t.Fatalf("all: %v %v", all, err)
	}
	two, err := ParseProfiles("hotspot, fanin")
	if err != nil || len(two) != 2 || two[0] != ProfileHotspot || two[1] != ProfileFanIn {
		t.Fatalf("pair: %v %v", two, err)
	}
	if _, err := ParseProfiles("bogus"); err == nil {
		t.Fatal("bogus profile accepted")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		kind string
	}{
		{nil, ""},
		{ErrInjectedDrop, "injected-drop"},
		{fmt.Errorf("wrapped: %w", ErrInjectedDrop), "injected-drop"},
		{tinyevm.ErrUnknownNode, "unknown-node"},
		{context.DeadlineExceeded, "deadline-exceeded"},
		{errors.New("something new"), "unknown"},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.kind {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.kind)
		}
	}
}

// newInProcessGateway serves a real rpc.Server over httptest — the full
// wire path without a child process.
func newInProcessGateway(t *testing.T) string {
	t.Helper()
	svc, prov, err := tinyevm.NewService("provider")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	ctx := context.Background()
	if err := prov.RegisterSensorValue(ctx, tinyevm.SensorTemperature, rpc.DefaultSensorValue); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rpc.NewServer(svc))
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestRunnerSmokeClosedLoop runs the full harness (all profiles, client
// kills, drops and delays) against an in-process gateway and checks the
// report: sessions ran, faults fired, every error stayed inside the
// taxonomy, and the bench emission parses.
func TestRunnerSmokeClosedLoop(t *testing.T) {
	url := newInProcessGateway(t)
	r := New(Config{
		URL:          url,
		Vehicles:     4,
		Concurrency:  4,
		Duration:     300 * time.Millisecond,
		Payments:     5,
		DepositEvery: 5,
		Seed:         7,
		Retries:      2,
		Faults: FaultConfig{
			ClientKillRate: 0.3,
			DropRate:       0.05,
			DelayRate:      0.2,
			DelayMax:       2 * time.Millisecond,
		},
	}, nil)
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("gate verdict: %v\nreport:\n%s", err, rep)
	}
	if rep.Sessions.Total == 0 || rep.Sessions.Completed == 0 {
		t.Fatalf("no sessions ran:\n%s", rep)
	}
	if rep.Sessions.Aborted == 0 {
		t.Fatalf("client-kill rate 0.3 but no aborted session over %d:\n%s", rep.Sessions.Total, rep)
	}
	for _, profile := range Profiles() {
		found := false
		for _, op := range rep.Ops {
			if op.Profile == string(profile) && op.Op == "pay" && op.Count > 0 {
				found = true
				if op.P50MS <= 0 || op.P99MS < op.P50MS || op.PerSec <= 0 {
					t.Fatalf("implausible stats for %s/pay: %+v", profile, op)
				}
			}
		}
		if !found {
			t.Fatalf("no pay latency recorded for profile %s:\n%s", profile, rep)
		}
	}
	checkBenchOutput(t, rep)
}

// TestRunnerOpenLoop exercises the Poisson generator: arrivals beyond
// the in-flight cap must shed, not queue.
func TestRunnerOpenLoop(t *testing.T) {
	url := newInProcessGateway(t)
	r := New(Config{
		URL:         url,
		Profiles:    []Profile{ProfileHotspot},
		Vehicles:    4,
		Arrival:     "poisson",
		Rate:        400, // far above what 2 slots sustain
		Concurrency: 2,
		Duration:    300 * time.Millisecond,
		Payments:    3,
		Seed:        11,
	}, nil)
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("gate verdict: %v\n%s", err, rep)
	}
	if rep.Sessions.Total == 0 {
		t.Fatalf("no sessions:\n%s", rep)
	}
	if rep.Sessions.Shed == 0 {
		t.Fatalf("overloaded open loop shed nothing:\n%s", rep)
	}
}

// checkBenchOutput verifies the report emits well-formed `go test
// -bench` lines: name + iteration count + value/unit pairs, exactly
// what cmd/benchreport -parse consumes.
func checkBenchOutput(t *testing.T, rep *Report) {
	t.Helper()
	var sb strings.Builder
	if err := rep.WriteBench(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"BenchmarkLoadOp/", "BenchmarkLoadSessions", "p95-ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("bench output missing %q:\n%s", want, out)
		}
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || len(fields)%2 != 0 {
			t.Fatalf("malformed bench line: %q", sc.Text())
		}
		if !strings.HasPrefix(fields[0], "BenchmarkLoad") {
			t.Fatalf("unexpected bench name: %q", fields[0])
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			t.Fatalf("bad iteration count in %q: %v", sc.Text(), err)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if _, err := strconv.ParseFloat(fields[i], 64); err != nil {
				t.Fatalf("bad metric value in %q: %v", sc.Text(), err)
			}
		}
	}
}

// TestRunnerDaemonKillRecovery is the end-to-end fault: a real
// tinyevm-serve child is SIGKILLed mid-run by the fault timeline and
// must recover from its WAL while the workload hammers on. The gate
// verdict must stay clean — daemon downtime surfaces as taxonomy
// (transport) errors, recovery is timed, and sessions complete after
// the restart.
func TestRunnerDaemonKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crashes a child process; skipped in -short")
	}
	dir := t.TempDir()
	binPath, err := BuildServeBinary(repoRoot(t), dir)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := FreeAddr()
	if err != nil {
		t.Fatal(err)
	}
	daemon := &Daemon{Bin: binPath, Addr: addr, DataDir: t.TempDir(), Provider: "city", Log: os.Stderr}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(daemon.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := daemon.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	r := New(Config{
		Profiles:     []Profile{ProfileDisjoint},
		Vehicles:     4,
		Concurrency:  4,
		Duration:     4 * time.Second,
		Payments:     5,
		DepositEvery: 3, // seal blocks so the kill lands mid-log
		Seed:         5,
		Retries:      4,
		Backoff:      100 * time.Millisecond,
		Faults:       FaultConfig{DaemonKills: 1},
	}, daemon)
	if got := len(r.Plan().KillTimes()); got != 1 {
		t.Fatalf("planned kills = %d, want 1", got)
	}
	rep, err := r.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("gate verdict: %v\n%s", err, rep)
	}
	if len(rep.Recoveries) != 1 {
		t.Fatalf("recoveries = %v (failures %v), want exactly 1", rep.Recoveries, rep.RecoveryFailures)
	}
	if rep.Recoveries[0] <= 0 || rep.Recoveries[0] > 30*time.Second {
		t.Fatalf("implausible recovery time %v", rep.Recoveries[0])
	}
	if rep.Sessions.Completed == 0 {
		t.Fatalf("no completed sessions around the crash:\n%s", rep)
	}
	t.Logf("report:\n%s", rep)
}

// repoRoot walks up from the package dir to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above package dir")
		}
		dir = parent
	}
}

// TestRunnerMultiTarget spreads vehicles across two in-process gateways
// and checks the per-node report buckets: both nodes served traffic,
// node latency counts sum to the op counts, and the bench emission
// carries one BenchmarkLoadNode line per target.
func TestRunnerMultiTarget(t *testing.T) {
	targets := []string{newInProcessGateway(t), newInProcessGateway(t)}
	r := New(Config{
		Targets:     targets,
		Profiles:    []Profile{ProfileDisjoint},
		Vehicles:    4,
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Payments:    3,
		Seed:        11,
	}, nil)
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("gate verdict: %v\nreport:\n%s", err, rep)
	}
	if len(rep.Nodes) != 2 {
		t.Fatalf("want 2 node buckets, got %+v", rep.Nodes)
	}
	var nodeOps, opOps uint64
	for i, ns := range rep.Nodes {
		if ns.Index != i || ns.Target != targets[i] {
			t.Fatalf("node bucket %d = %+v", i, ns)
		}
		if ns.Count == 0 {
			t.Fatalf("node %d served no traffic:\n%s", i, rep)
		}
		nodeOps += ns.Count
	}
	for _, op := range rep.Ops {
		opOps += op.Count
	}
	if nodeOps != opOps {
		t.Fatalf("node op count %d != per-op count %d", nodeOps, opOps)
	}
	var bench bytes.Buffer
	if err := rep.WriteBench(&bench); err != nil {
		t.Fatal(err)
	}
	for i := range targets {
		want := fmt.Sprintf("BenchmarkLoadNode/%d ", i)
		if !strings.Contains(bench.String(), want) {
			t.Fatalf("bench output missing %q:\n%s", want, bench.String())
		}
	}
}

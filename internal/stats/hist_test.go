package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// relErr is the maximum relative quantile error the log-bucketed
// histogram may introduce: one bucket width plus midpoint rounding.
const relErr = 0.06

func TestLatencyHistEmpty(t *testing.T) {
	var h LatencyHist
	if h.Count() != 0 || h.Quantile(50) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not all-zero: %+v", h)
	}
}

func TestLatencyHistSingleValue(t *testing.T) {
	var h LatencyHist
	for i := 0; i < 100; i++ {
		h.Observe(5000)
	}
	// A degenerate distribution must report exactly: quantiles clamp to
	// [min, max] = [5000, 5000].
	for _, p := range []float64{0, 1, 50, 95, 99, 100} {
		if got := h.Quantile(p); got != 5000 {
			t.Fatalf("Quantile(%v) = %v, want 5000", p, got)
		}
	}
	if h.Mean() != 5000 {
		t.Fatalf("Mean = %v", h.Mean())
	}
}

// TestLatencyHistUniform checks quantiles of a known uniform
// distribution against the exact sorted-sample answer.
func TestLatencyHistUniform(t *testing.T) {
	var h LatencyHist
	var xs []float64
	for i := 1; i <= 10000; i++ {
		v := float64(i) * 100 // 100..1e6
		h.Observe(v)
		xs = append(xs, v)
	}
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99, 99.9} {
		exact := Percentile(xs, p)
		got := h.Quantile(p)
		if math.Abs(got-exact)/exact > relErr {
			t.Errorf("uniform Quantile(%v) = %v, exact %v (rel err %.3f)",
				p, got, exact, math.Abs(got-exact)/exact)
		}
	}
	if h.Count() != 10000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if math.Abs(h.Mean()-500050)/500050 > 1e-9 {
		t.Fatalf("Mean = %v, want 500050", h.Mean())
	}
	if h.Min() != 100 || h.Max() != 1e6 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

// TestLatencyHistLogNormal checks a heavy-tailed distribution — the
// shape real latency data takes — against exact percentiles.
func TestLatencyHistLogNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h LatencyHist
	var xs []float64
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64()*1.5 + 12) // median ~e^12 ns ≈ 163µs
		h.Observe(v)
		xs = append(xs, v)
	}
	for _, p := range []float64{50, 90, 95, 99, 99.9} {
		exact := Percentile(xs, p)
		got := h.Quantile(p)
		if math.Abs(got-exact)/exact > relErr {
			t.Errorf("lognormal Quantile(%v) = %v, exact %v (rel err %.3f)",
				p, got, exact, math.Abs(got-exact)/exact)
		}
	}
}

// TestLatencyHistMergeExact verifies the merge contract: merging two
// histograms is byte-identical to recording every sample into one.
func TestLatencyHistMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var combined, a, b LatencyHist
	for i := 0; i < 5000; i++ {
		v := math.Exp(rng.NormFloat64() + 10)
		combined.Observe(v)
		if i%3 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	var merged LatencyHist
	merged.Merge(&a)
	merged.Merge(&b)

	if merged.Count() != combined.Count() {
		t.Fatalf("Count: merged %d, combined %d", merged.Count(), combined.Count())
	}
	if merged.Sum() != combined.Sum() {
		// Summation order differs, allow float tolerance.
		if math.Abs(merged.Sum()-combined.Sum())/combined.Sum() > 1e-9 {
			t.Fatalf("Sum: merged %v, combined %v", merged.Sum(), combined.Sum())
		}
	}
	if merged.Min() != combined.Min() || merged.Max() != combined.Max() {
		t.Fatalf("Min/Max: merged %v/%v, combined %v/%v",
			merged.Min(), merged.Max(), combined.Min(), combined.Max())
	}
	// Bucket counts must be identical, so every quantile is identical.
	for _, p := range []float64{0, 1, 25, 50, 75, 95, 99, 100} {
		if merged.Quantile(p) != combined.Quantile(p) {
			t.Fatalf("Quantile(%v): merged %v, combined %v", p, merged.Quantile(p), combined.Quantile(p))
		}
	}
}

func TestLatencyHistMergeEmptyAndNil(t *testing.T) {
	var h LatencyHist
	h.Observe(100)
	h.Merge(nil)
	var empty LatencyHist
	h.Merge(&empty)
	if h.Count() != 1 || h.Min() != 100 {
		t.Fatalf("merge with nil/empty disturbed state: %+v", h)
	}
	// Merging into an empty histogram adopts min/max.
	var h2 LatencyHist
	h2.Merge(&h)
	if h2.Count() != 1 || h2.Min() != 100 || h2.Max() != 100 {
		t.Fatalf("merge into empty: %+v", h2)
	}
}

func TestLatencyHistObserveDuration(t *testing.T) {
	var h LatencyHist
	h.ObserveDuration(2 * time.Millisecond)
	p50, _, _ := h.QuantilesMS()
	if math.Abs(p50-2) > 2*relErr {
		t.Fatalf("p50 = %v ms, want ~2", p50)
	}
}

func TestLatencyHistNegativeAndNaN(t *testing.T) {
	var h LatencyHist
	h.Observe(-5)
	h.Observe(math.NaN())
	h.Observe(10)
	if h.Count() != 3 || h.Min() != 0 || h.Max() != 10 {
		t.Fatalf("negative/NaN handling: %+v", h)
	}
}

// TestPercentileExact pins the exact interpolated percentile on a known
// small sample (satellite: exact quantiles on known distributions).
func TestPercentileExact(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50},
		{10, 14}, {90, 46}, // interpolated ranks
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("mean = %f", s.Mean)
	}
	if s.Std != 2 {
		t.Fatalf("std = %f", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %f/%f", s.Min, s.Max)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %f", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Fatalf("p100 = %f", got)
	}
	if got := Percentile(xs, 50); got != 5.5 {
		t.Fatalf("p50 = %f", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %f", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(h.Counts) != 5 {
		t.Fatalf("%d bins", len(h.Counts))
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("counts sum %d", total)
	}
	// Each bin holds exactly two values.
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bin %d = %d", i, c)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 4)
	if h.Counts[0] != 3 {
		t.Fatalf("degenerate histogram: %+v", h)
	}
	empty := NewHistogram(nil, 4)
	if empty.Total != 0 {
		t.Fatal("empty histogram has entries")
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	f := func(seed int64) bool {
		xs := make([]float64, 200)
		v := float64(seed % 97)
		for i := range xs {
			v = math.Mod(v*1103515245+12345, 1000)
			xs[i] = v
		}
		h := NewHistogram(xs, 20)
		var integral float64
		for _, d := range h.Density() {
			integral += d * h.Width
		}
		return math.Abs(integral-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Correlation(xs, ys); math.Abs(got-1) > 1e-9 {
		t.Fatalf("perfect correlation got %f", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, neg); math.Abs(got+1) > 1e-9 {
		t.Fatalf("perfect anticorrelation got %f", got)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if got := Correlation(xs, flat); got != 0 {
		t.Fatalf("flat correlation got %f", got)
	}
	if got := Correlation(xs, []float64{1}); got != 0 {
		t.Fatalf("mismatched lengths got %f", got)
	}
}

func TestRenderHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 2, 3, 3, 3}, 3)
	out := RenderHistogram(h, 20, "test histo")
	if !strings.Contains(out, "test histo") {
		t.Fatal("missing label")
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no bars drawn")
	}
}

func TestRenderScatter(t *testing.T) {
	pts := []Point{{X: 1, Y: 1}, {X: 2, Y: 4}, {X: 3, Y: 9}}
	out := RenderScatter(pts, 40, 10, "squares", "x", "x^2", math.NaN(), 5)
	if !strings.Contains(out, "squares") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "+") {
		t.Fatal("no points drawn")
	}
	if !strings.Contains(out, "-") {
		t.Fatal("reference line missing")
	}
	if RenderScatter(nil, 10, 5, "empty", "", "", math.NaN(), math.NaN()) == "" {
		t.Fatal("empty scatter should render title")
	}
}

func TestRenderSpans(t *testing.T) {
	spans := []Span{
		{Start: 0, Duration: 0.1, Level: 13, Label: "cpu"},
		{Start: 0.1, Duration: 0.35, Level: 26, Label: "crypto"},
		{Start: 0.45, Duration: 0.05, Level: 24, Label: "tx"},
	}
	out := RenderSpans(spans, 60, 8, "current", "s", "mA")
	if !strings.Contains(out, "current") || !strings.Contains(out, "#") {
		t.Fatalf("span render broken:\n%s", out)
	}
}

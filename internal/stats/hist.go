package stats

import (
	"fmt"
	"math"
	"time"
)

// LatencyHist is a log-bucketed histogram for non-negative samples
// (primary use: operation latencies in nanoseconds). Recording is O(1)
// and constant-memory; two histograms recorded independently merge
// losslessly (bucket counts add), which is how the load harness shards
// recording across workers without a shared lock. Quantile estimates
// carry a bounded relative error given by the bucket growth factor
// (~2.5% at the default growth of 1.05, since estimates use the bucket
// midpoint).
//
// The zero value is ready to use. LatencyHist is not safe for
// concurrent use; shard per goroutine and Merge.
type LatencyHist struct {
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// histGrowth is the per-bucket growth factor: bucket i covers
// [histGrowth^i, histGrowth^(i+1)). Values below 1 land in bucket 0.
const histGrowth = 1.05

var logHistGrowth = math.Log(histGrowth)

// bucketOf returns the bucket index of v.
func bucketOf(v float64) int {
	if v <= 1 {
		return 0
	}
	return int(math.Log(v) / logHistGrowth)
}

// bucketValue returns the representative (geometric-midpoint) value of
// bucket i.
func bucketValue(i int) float64 {
	if i == 0 {
		return 1
	}
	lo := math.Pow(histGrowth, float64(i))
	return lo * math.Sqrt(histGrowth)
}

// Observe records one sample. Negative and NaN samples are recorded as
// zero (they land in bucket 0 but keep Min honest at 0).
func (h *LatencyHist) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	i := bucketOf(v)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// ObserveDuration records a duration as nanoseconds.
func (h *LatencyHist) ObserveDuration(d time.Duration) {
	h.Observe(float64(d.Nanoseconds()))
}

// Merge folds other into h. Merging is exact: the result is identical
// to having recorded both histograms' samples into one.
func (h *LatencyHist) Merge(other *LatencyHist) {
	if other == nil || other.count == 0 {
		return
	}
	if len(other.counts) > len(h.counts) {
		grown := make([]uint64, len(other.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() uint64 { return h.count }

// Sum returns the sum of recorded samples.
func (h *LatencyHist) Sum() float64 { return h.sum }

// Min returns the smallest recorded sample (0 when empty).
func (h *LatencyHist) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *LatencyHist) Max() float64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *LatencyHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the p-th percentile (p in 0..100) as the
// representative value of the bucket holding that rank, clamped to the
// observed [Min, Max] so degenerate distributions report exactly.
func (h *LatencyHist) Quantile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p >= 100 {
		return h.max
	}
	// Nearest-rank on the cumulative bucket counts.
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// QuantilesMS returns the p50/p95/p99 latency quantiles in
// milliseconds, assuming samples were recorded in nanoseconds (the
// ObserveDuration convention).
func (h *LatencyHist) QuantilesMS() (p50, p95, p99 float64) {
	const msPerNs = 1e-6
	return h.Quantile(50) * msPerNs, h.Quantile(95) * msPerNs, h.Quantile(99) * msPerNs
}

// String renders a one-line summary (ns-recorded convention).
func (h *LatencyHist) String() string {
	p50, p95, p99 := h.QuantilesMS()
	return fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
		h.count, h.Mean()*1e-6, p50, p95, p99, h.max*1e-6)
}

// Package stats provides the descriptive statistics and ASCII renderings
// used by the evaluation harness to regenerate the paper's tables and
// figures (density plots, scatter plots, summary rows).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the Table II style descriptive statistics of a sample.
type Summary struct {
	N    int
	Min  float64
	Max  float64
	Mean float64
	Std  float64
	P50  float64
	P95  float64
	P99  float64
}

// Summarize computes summary statistics; an empty sample yields zeros.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	s.P50 = Percentile(xs, 50)
	s.P95 = Percentile(xs, 95)
	s.P99 = Percentile(xs, 99)
	return s
}

// Percentile returns the p-th percentile (0-100) by nearest-rank with
// linear interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram bins xs into n equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Width    float64
	Counts   []int
	Total    int
}

// NewHistogram builds an n-bin histogram. Degenerate samples produce a
// single full bin.
func NewHistogram(xs []float64, n int) Histogram {
	if n <= 0 {
		n = 10
	}
	h := Histogram{Counts: make([]int, n), Total: len(xs)}
	if len(xs) == 0 {
		return h
	}
	h.Min, h.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	if h.Max == h.Min {
		h.Counts[0] = len(xs)
		h.Width = 1
		return h
	}
	h.Width = (h.Max - h.Min) / float64(n)
	for _, x := range xs {
		idx := int((x - h.Min) / h.Width)
		if idx >= n {
			idx = n - 1
		}
		h.Counts[idx] += 1
	}
	return h
}

// Density returns the normalized bin heights (sum of height*width = 1),
// the quantity plotted on the paper's Figure 3a/3c y-axes.
func (h Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	if h.Total == 0 || h.Width == 0 {
		return out
	}
	norm := float64(h.Total) * h.Width
	for i, c := range h.Counts {
		out[i] = float64(c) / norm
	}
	return out
}

// RenderHistogram draws a horizontal-bar histogram with bin labels.
func RenderHistogram(h Histogram, width int, label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", label, h.Total)
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return b.String()
	}
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*h.Width
		hi := lo + h.Width
		bar := strings.Repeat("#", c*width/maxCount)
		fmt.Fprintf(&b, "%10.0f-%-10.0f |%-*s %d\n", lo, hi, width, bar, c)
	}
	return b.String()
}

// Point is one (x, y) sample of a scatter plot.
type Point struct {
	X, Y float64
	// Mark selects the plot glyph; 0 uses '+'.
	Mark byte
}

// RenderScatter draws an ASCII scatter plot (the Figure 3b / Figure 4
// renderings). Horizontal and vertical reference lines can be drawn at
// refX/refY (NaN disables them).
func RenderScatter(points []Point, cols, rows int, title, xLabel, yLabel string, refX, refY float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(points) == 0 {
		return b.String()
	}
	minX, maxX := points[0].X, points[0].X
	minY, maxY := points[0].Y, points[0].Y
	for _, p := range points {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if !math.IsNaN(refX) {
		maxX = math.Max(maxX, refX)
	}
	if !math.IsNaN(refY) {
		maxY = math.Max(maxY, refY)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	colOf := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(cols-1))
		return clamp(c, 0, cols-1)
	}
	rowOf := func(y float64) int {
		r := int((y - minY) / (maxY - minY) * float64(rows-1))
		return clamp(rows-1-r, 0, rows-1)
	}
	if !math.IsNaN(refY) {
		r := rowOf(refY)
		for c := 0; c < cols; c++ {
			grid[r][c] = '-'
		}
	}
	if !math.IsNaN(refX) {
		c := colOf(refX)
		for r := 0; r < rows; r++ {
			grid[r][c] = '|'
		}
	}
	for _, p := range points {
		mark := p.Mark
		if mark == 0 {
			mark = '+'
		}
		grid[rowOf(p.Y)][colOf(p.X)] = mark
	}
	fmt.Fprintf(&b, "%12.0f ┤\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "%12s │%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%12.0f └%s\n", minY, strings.Repeat("─", cols))
	fmt.Fprintf(&b, "%12s  %-*s%*s\n", "", cols/2, fmt.Sprintf("%.0f", minX), cols/2, fmt.Sprintf("%.0f", maxX))
	fmt.Fprintf(&b, "  x: %s, y: %s\n", xLabel, yLabel)
	return b.String()
}

// RenderStepSeries draws a time series of (start, duration, level) spans
// as a step plot — the Figure 5 current-over-time rendering.
type Span struct {
	Start, Duration float64
	Level           float64
	Label           string
}

// RenderSpans draws spans as an ASCII step chart over [0, end].
func RenderSpans(spans []Span, cols, rows int, title, xUnit, yUnit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(spans) == 0 {
		return b.String()
	}
	var end, maxLevel float64
	for _, s := range spans {
		if e := s.Start + s.Duration; e > end {
			end = e
		}
		if s.Level > maxLevel {
			maxLevel = s.Level
		}
	}
	if end == 0 || maxLevel == 0 {
		return b.String()
	}
	// level per column = max level of any span overlapping the column.
	levels := make([]float64, cols)
	for _, s := range spans {
		c0 := clamp(int(s.Start/end*float64(cols)), 0, cols-1)
		c1 := clamp(int((s.Start+s.Duration)/end*float64(cols)), 0, cols-1)
		for c := c0; c <= c1; c++ {
			if s.Level > levels[c] {
				levels[c] = s.Level
			}
		}
	}
	for r := rows - 1; r >= 0; r-- {
		threshold := maxLevel * float64(r) / float64(rows-1)
		line := make([]byte, cols)
		for c := 0; c < cols; c++ {
			if levels[c] >= threshold && levels[c] > 0 {
				line[c] = '#'
			} else {
				line[c] = ' '
			}
		}
		fmt.Fprintf(&b, "%8.1f │%s\n", threshold, string(line))
	}
	fmt.Fprintf(&b, "%8s └%s\n", "", strings.Repeat("─", cols))
	fmt.Fprintf(&b, "%8s  0%*s\n", "", cols-1, fmt.Sprintf("%.2f %s", end, xUnit))
	fmt.Fprintf(&b, "  y: %s\n", yUnit)
	return b.String()
}

// Correlation returns the Pearson correlation coefficient of two
// equal-length samples.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	sx := Summarize(xs)
	sy := Summarize(ys)
	if sx.Std == 0 || sy.Std == 0 {
		return 0
	}
	var cov float64
	for i := range xs {
		cov += (xs[i] - sx.Mean) * (ys[i] - sy.Mean)
	}
	cov /= float64(len(xs))
	return cov / (sx.Std * sy.Std)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

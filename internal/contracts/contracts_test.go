package contracts

import (
	"bytes"
	"testing"

	"tinyevm/internal/device"
	"tinyevm/internal/evm"
	"tinyevm/internal/secp256k1"
	"tinyevm/internal/types"
	"tinyevm/internal/uint256"
)

func TestSelectorKnownValue(t *testing.T) {
	// transfer(address,uint256) has the famous selector a9059cbb.
	sel := Selector("transfer(address,uint256)")
	want := [4]byte{0xa9, 0x05, 0x9c, 0xbb}
	if sel != want {
		t.Fatalf("selector %x, want %x", sel, want)
	}
}

func TestRuntimesAssemble(t *testing.T) {
	ch := PaymentChannelRuntime()
	if len(ch) == 0 || len(ch) > evm.TinyCodeLimit {
		t.Fatalf("channel runtime %d bytes", len(ch))
	}
	tp := TemplateRuntime()
	if len(tp) == 0 || len(tp) > evm.TinyCodeLimit {
		t.Fatalf("template runtime %d bytes", len(tp))
	}
	// The template embeds the full channel init code.
	if len(tp) <= len(ch) {
		t.Fatal("template does not embed the channel")
	}
}

// deployChannel deploys a payment channel directly on a device.
func deployChannel(t *testing.T, d *device.Device, sender, receiver types.Address, funds uint64) types.Address {
	t.Helper()
	init := PaymentChannelInitCode(sender, receiver, device.SensorTemperature, 0)
	res := d.Deploy(init, funds)
	if res.Err != nil {
		t.Fatalf("channel deploy failed: %v", res.Err)
	}
	return res.Address
}

func TestChannelConstructorStoresPartiesAndSensor(t *testing.T) {
	d := device.New("lot-1")
	d.Sensors.RegisterValue(device.SensorTemperature, 2172) // 21.72 C

	car := secp256k1.DeterministicKey("car-1").PublicKey.Address()
	lot := d.Address()
	ch := deployChannel(t, d, car, lot, 5000)

	if got := d.State.GetState(ch, uint256.NewInt(ChannelSlotSender)); types.BytesToAddress(bs(got)[12:]) != car {
		t.Fatal("sender slot wrong")
	}
	if got := d.State.GetState(ch, uint256.NewInt(ChannelSlotReceiver)); types.BytesToAddress(bs(got)[12:]) != lot {
		t.Fatal("receiver slot wrong")
	}
	if got := d.State.GetState(ch, uint256.NewInt(ChannelSlotSensor)); got.Uint64() != 2172 {
		t.Fatalf("sensor slot = %s, want 2172", got.Dec())
	}
	if got := d.State.Balance(ch); got.Uint64() != 5000 {
		t.Fatalf("channel balance %s", got.Dec())
	}
}

func bs(w uint256.Int) []byte {
	b := w.Bytes32()
	return b[:]
}

func TestChannelViews(t *testing.T) {
	d := device.New("lot-2")
	d.Sensors.RegisterValue(device.SensorTemperature, 999)
	car := secp256k1.DeterministicKey("car-2").PublicKey.Address()
	ch := deployChannel(t, d, car, d.Address(), 0)

	res := d.Call(ch, Calldata(SigSensorData), 0)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	var w uint256.Int
	w.SetBytes(res.ReturnData)
	if w.Uint64() != 999 {
		t.Fatalf("sensorData() = %s", w.Dec())
	}

	res = d.Call(ch, Calldata(SigSender), 0)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if WordToAddress(res.ReturnData) != car {
		t.Fatal("sender() wrong")
	}

	res = d.Call(ch, Calldata(SigReceiver), 0)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if WordToAddress(res.ReturnData) != d.Address() {
		t.Fatal("receiver() wrong")
	}
}

func TestChannelUnknownSelectorReverts(t *testing.T) {
	d := device.New("lot-3")
	d.Sensors.RegisterValue(device.SensorTemperature, 1)
	car := secp256k1.DeterministicKey("car-3").PublicKey.Address()
	ch := deployChannel(t, d, car, d.Address(), 0)
	res := d.Call(ch, Calldata("bogus()"), 0)
	if res.Err == nil {
		t.Fatal("unknown selector accepted")
	}
}

func TestChannelCloseHappyPath(t *testing.T) {
	// The receiver (the device) closes the channel with the sender's
	// signature over (channel, amount): amount goes to the receiver,
	// the rest refunds to the sender via SELFDESTRUCT.
	d := device.New("parking-lot")
	d.Sensors.RegisterValue(device.SensorTemperature, 2000)

	carKey := secp256k1.DeterministicKey("smart-car")
	car := carKey.PublicKey.Address()
	d.State.AddBalance(car, uint256.NewInt(0)) // account exists

	const deposit = 10_000
	const amount = 3_500
	ch := deployChannel(t, d, car, d.Address(), deposit)

	digest := PaymentDigest(ch, amount)
	sig, err := carKey.Sign(digest)
	if err != nil {
		t.Fatal(err)
	}

	lotBefore := d.State.Balance(d.Address()).Uint64()
	carBefore := d.State.Balance(car).Uint64()

	res := d.Call(ch, CloseCalldata(amount, sig), 0)
	if res.Err != nil {
		t.Fatalf("close failed: %v", res.Err)
	}

	lotAfter := d.State.Balance(d.Address()).Uint64()
	carAfter := d.State.Balance(car).Uint64()
	if lotAfter-lotBefore != amount {
		t.Fatalf("receiver got %d, want %d", lotAfter-lotBefore, amount)
	}
	if carAfter-carBefore != deposit-amount {
		t.Fatalf("sender refunded %d, want %d", carAfter-carBefore, deposit-amount)
	}
	if len(d.State.Code(ch)) != 0 {
		t.Fatal("channel survived close")
	}
}

func TestChannelCloseRejectsForgedSignature(t *testing.T) {
	d := device.New("lot-4")
	d.Sensors.RegisterValue(device.SensorTemperature, 1)
	carKey := secp256k1.DeterministicKey("honest-car")
	mallory := secp256k1.DeterministicKey("mallory")
	ch := deployChannel(t, d, carKey.PublicKey.Address(), d.Address(), 1000)

	digest := PaymentDigest(ch, 999)
	sig, err := mallory.Sign(digest) // wrong signer
	if err != nil {
		t.Fatal(err)
	}
	res := d.Call(ch, CloseCalldata(999, sig), 0)
	if res.Err == nil {
		t.Fatal("forged signature accepted by close()")
	}
	if len(d.State.Code(ch)) == 0 {
		t.Fatal("channel destroyed on failed close")
	}
}

func TestChannelCloseRejectsWrongAmount(t *testing.T) {
	d := device.New("lot-5")
	d.Sensors.RegisterValue(device.SensorTemperature, 1)
	carKey := secp256k1.DeterministicKey("car-5")
	ch := deployChannel(t, d, carKey.PublicKey.Address(), d.Address(), 1000)

	digest := PaymentDigest(ch, 100)
	sig, err := carKey.Sign(digest)
	if err != nil {
		t.Fatal(err)
	}
	// Receiver tries to claim more than was signed.
	res := d.Call(ch, CloseCalldata(500, sig), 0)
	if res.Err == nil {
		t.Fatal("inflated amount accepted by close()")
	}
}

func TestChannelCloseOnlyReceiver(t *testing.T) {
	// A third device (not the receiver) must not be able to close.
	d := device.New("lot-6")
	d.Sensors.RegisterValue(device.SensorTemperature, 1)
	carKey := secp256k1.DeterministicKey("car-6")
	other := types.MustHexToAddress("0x00000000000000000000000000000000000000a7")
	// Channel receiver is `other`, but the device (caller) is not it.
	ch := deployChannel(t, d, carKey.PublicKey.Address(), other, 1000)

	digest := PaymentDigest(ch, 10)
	sig, _ := carKey.Sign(digest)
	res := d.Call(ch, CloseCalldata(10, sig), 0)
	if res.Err == nil {
		t.Fatal("non-receiver closed the channel")
	}
}

func TestTemplateCreatesChannels(t *testing.T) {
	// Deploy the factory on a device and create channels through it,
	// checking the logical clock: "The nodes use the template to deploy
	// a new off-chain payment channel using a unique monotonic counter
	// (logical clock) as an identifier."
	d := device.New("lot-7")
	d.Sensors.RegisterValue(device.SensorTemperature, 2222)
	provider := d.Address()

	res := d.Deploy(TemplateInitCode(provider), 0)
	if res.Err != nil {
		t.Fatalf("template deploy failed: %v", res.Err)
	}
	tpl := res.Address

	for i := uint64(1); i <= 3; i++ {
		cr := d.Call(tpl, CreateChannelCalldata(0), 2_000)
		if cr.Err != nil {
			t.Fatalf("createPaymentChannel #%d failed: %v", i, cr.Err)
		}
		ch := WordToAddress(cr.ReturnData)
		if ch.IsZero() {
			t.Fatal("zero channel address")
		}
		// Logical clock advanced.
		clk := d.Call(tpl, Calldata(SigLogicalClock), 0)
		if clk.Err != nil {
			t.Fatal(clk.Err)
		}
		var w uint256.Int
		w.SetBytes(clk.ReturnData)
		if w.Uint64() != i {
			t.Fatalf("logical clock = %s, want %d", w.Dec(), i)
		}
		// Channel funded with the forwarded value.
		if got := d.State.Balance(ch); got.Uint64() != 2_000 {
			t.Fatalf("channel balance %s", got.Dec())
		}
		// Channel registered in the ring.
		at := d.Call(tpl, ChannelAtCalldata(i), 0)
		if at.Err != nil {
			t.Fatal(at.Err)
		}
		if WordToAddress(at.ReturnData) != ch {
			t.Fatal("channelAt() mismatch")
		}
		// The channel's constructor ran with the device's sensor.
		sd := d.Call(ch, Calldata(SigSensorData), 0)
		if sd.Err != nil {
			t.Fatal(sd.Err)
		}
		w.SetBytes(sd.ReturnData)
		if w.Uint64() != 2222 {
			t.Fatalf("channel sensor data %s", w.Dec())
		}
	}
}

func TestTemplateReceiverView(t *testing.T) {
	d := device.New("lot-8")
	provider := types.MustHexToAddress("0x0000000000000000000000000000000000000099")
	res := d.Deploy(TemplateInitCode(provider), 0)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	out := d.Call(res.Address, Calldata(SigTemplateReceiver), 0)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if WordToAddress(out.ReturnData) != provider {
		t.Fatal("receiver() wrong")
	}
}

func TestEndToEndChannelThroughTemplate(t *testing.T) {
	// Full device-side flow: factory -> channel -> signed payment ->
	// close, all in TinyEVM bytecode.
	d := device.New("lot-9")
	d.Sensors.RegisterValue(device.SensorTemperature, 1800)
	carKey := d.Key() // the device itself opens the channel here

	res := d.Deploy(TemplateInitCode(d.Address()), 0)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	cr := d.Call(res.Address, CreateChannelCalldata(7), 5_000)
	if cr.Err != nil {
		t.Fatal(cr.Err)
	}
	ch := WordToAddress(cr.ReturnData)

	digest := PaymentDigest(ch, 1_250)
	sig, err := carKey.Sign(digest)
	if err != nil {
		t.Fatal(err)
	}
	close := d.Call(ch, CloseCalldata(1_250, sig), 0)
	if close.Err != nil {
		t.Fatalf("close failed: %v", close.Err)
	}
	if len(d.State.Code(ch)) != 0 {
		t.Fatal("channel not destroyed")
	}
}

func TestCalldataPadding(t *testing.T) {
	cd := Calldata("f(uint8)", []byte{0x7})
	if len(cd) != 36 {
		t.Fatalf("calldata %d bytes", len(cd))
	}
	if cd[35] != 0x07 {
		t.Fatal("short word not right-aligned")
	}
	for i := 4; i < 35; i++ {
		if cd[i] != 0 {
			t.Fatal("padding not zero")
		}
	}
}

func TestWrapDeployTwoPassStable(t *testing.T) {
	runtime := []byte{0x60, 0x01, 0x60, 0x02, 0x01, 0x00}
	a := WrapDeploy("", runtime, nil)
	b := WrapDeploy("", runtime, []byte{1, 2, 3})
	// Args must not shift the runtime offset.
	if !bytes.Equal(a, b[:len(a)]) {
		t.Fatal("args changed the constructor")
	}
	if !bytes.Equal(b[len(b)-3:], []byte{1, 2, 3}) {
		t.Fatal("args not appended")
	}
}

func TestPaymentDigestBindsChannelAndAmount(t *testing.T) {
	a := types.MustHexToAddress("0x1111111111111111111111111111111111111111")
	b := types.MustHexToAddress("0x2222222222222222222222222222222222222222")
	if PaymentDigest(a, 5) == PaymentDigest(b, 5) {
		t.Fatal("digest ignores channel")
	}
	if PaymentDigest(a, 5) == PaymentDigest(a, 6) {
		t.Fatal("digest ignores amount")
	}
}

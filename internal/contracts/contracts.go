// Package contracts provides the smart contracts of the TinyEVM system
// as real EVM bytecode, assembled from scratch with internal/asm. They
// implement the behaviour of the paper's Listing 1 (the factory
// Template) and Listing 2 (the PaymentChannel whose constructor reads a
// sensor through the IoT opcode 0x0C and whose close() verifies an
// off-chain payment signature via ECRECOVER).
//
// ABI convention: Solidity-compatible 4-byte selectors
// (keccak256(signature)[:4]) followed by 32-byte word arguments.
// Constructor arguments are appended to the init code and read back with
// CODESIZE/CODECOPY, exactly as Solidity emits them.
package contracts

import (
	"encoding/binary"
	"fmt"

	"tinyevm/internal/asm"
	"tinyevm/internal/keccak"
	"tinyevm/internal/secp256k1"
	"tinyevm/internal/types"
	"tinyevm/internal/uint256"
)

// Selector returns the 4-byte function selector of a signature like
// "close(uint256,bytes32,bytes32,uint8)".
func Selector(sig string) [4]byte {
	h := keccak.Sum256([]byte(sig))
	var out [4]byte
	copy(out[:], h[:4])
	return out
}

// Function signatures of the PaymentChannel runtime.
const (
	SigSender     = "sender()"
	SigReceiver   = "receiver()"
	SigSensorData = "sensorData()"
	// SigRegister records a payment state (seq, cumulative) on the
	// channel's side-chain storage — the Figure 5 "register the payment
	// on the side-chain" step.
	SigRegister = "register(uint256,uint256)"
	SigSeq      = "seq()"
	SigTotal    = "total()"
	SigClose    = "close(uint256,bytes32,bytes32,uint8)"
)

// Function signatures of the Template runtime.
const (
	SigTemplateReceiver = "receiver()"
	SigLogicalClock     = "logicalClock()"
	SigCreateChannel    = "createPaymentChannel(uint256)"
	SigChannelAt        = "channelAt(uint256)"
)

// Storage layout shared by contract code and the Go helpers that inspect
// it.
const (
	// ChannelSlotSender holds the paying party.
	ChannelSlotSender = 0x00
	// ChannelSlotReceiver holds the paid party.
	ChannelSlotReceiver = 0x01
	// ChannelSlotSensor holds the constructor's sensor reading; the slot
	// number 0x0c mirrors the paper's Listing 2 ("sstore(0x0c)").
	ChannelSlotSensor = 0x0c
	// ChannelSlotSeq and ChannelSlotTotal hold the registered
	// side-chain state (sequence number and cumulative amount).
	ChannelSlotSeq   = 0x04
	ChannelSlotTotal = 0x05

	// TemplateSlotReceiver holds the service provider address.
	TemplateSlotReceiver = 0x00
	// TemplateSlotClock holds the logical clock (channel counter).
	TemplateSlotClock = 0x01
	// TemplateSlotChannelBase is the base of the 16-entry channel ring.
	TemplateSlotChannelBase = 0x10
	// TemplateChannelRing is the number of channel address slots.
	TemplateChannelRing = 16
)

func selHex(sig string) string {
	s := Selector(sig)
	return fmt.Sprintf("0x%02x%02x%02x%02x", s[0], s[1], s[2], s[3])
}

// returnWord is the assembly tail that returns the stack top as one word.
const returnWord = `
	PUSH1 0x00
	MSTORE
	PUSH1 0x20
	PUSH1 0x00
	RETURN
`

// revertTail reverts with no data.
const revertTail = `
	PUSH1 0x00
	PUSH1 0x00
	REVERT
`

// PaymentChannelRuntime assembles the channel's runtime bytecode.
func PaymentChannelRuntime() []byte {
	src := `
		; --- dispatch -------------------------------------------------
		CALLDATASIZE
		ISZERO
		PUSH :receive
		JUMPI
		PUSH1 0x00
		CALLDATALOAD
		PUSH1 0xe0
		SHR
		DUP1
		PUSH4 ` + selHex(SigSender) + `
		EQ
		PUSH :sender
		JUMPI
		DUP1
		PUSH4 ` + selHex(SigReceiver) + `
		EQ
		PUSH :receiver
		JUMPI
		DUP1
		PUSH4 ` + selHex(SigSensorData) + `
		EQ
		PUSH :sensor
		JUMPI
		DUP1
		PUSH4 ` + selHex(SigRegister) + `
		EQ
		PUSH :register
		JUMPI
		DUP1
		PUSH4 ` + selHex(SigSeq) + `
		EQ
		PUSH :seq
		JUMPI
		DUP1
		PUSH4 ` + selHex(SigTotal) + `
		EQ
		PUSH :total
		JUMPI
		DUP1
		PUSH4 ` + selHex(SigClose) + `
		EQ
		PUSH :close
		JUMPI
	` + revertTail + `

		:receive JUMPDEST    ; plain value transfers top up the channel
		STOP

		; --- register(seq, cumulative): extend the side-chain state ----
		; Only the channel parties may register; the sequence number must
		; strictly increase (the logical clock).
		:register JUMPDEST
		CALLER
		PUSH1 0x00
		SLOAD
		EQ
		CALLER
		PUSH1 0x01
		SLOAD
		EQ
		OR
		PUSH :regauth
		JUMPI
	` + revertTail + `
		:regauth JUMPDEST
		; require newSeq > storedSeq: GT pops the top as its left
		; operand, so push stored first and the new value last.
		PUSH1 0x04
		SLOAD          ; stored
		PUSH1 0x04
		CALLDATALOAD   ; new (top)
		GT             ; new > stored
		PUSH :regok
		JUMPI
	` + revertTail + `
		:regok JUMPDEST
		PUSH1 0x04
		CALLDATALOAD
		PUSH1 0x04
		SSTORE         ; seq
		PUSH1 0x24
		CALLDATALOAD
		PUSH1 0x05
		SSTORE         ; cumulative
		STOP

		:seq JUMPDEST
		PUSH1 0x04
		SLOAD
	` + returnWord + `

		:total JUMPDEST
		PUSH1 0x05
		SLOAD
	` + returnWord + `

		:sender JUMPDEST
		PUSH1 0x00
		SLOAD
	` + returnWord + `

		:receiver JUMPDEST
		PUSH1 0x01
		SLOAD
	` + returnWord + `

		:sensor JUMPDEST
		PUSH1 0x0c
		SLOAD
	` + returnWord + `

		; --- close(amount, r, s, v) ------------------------------------
		; "function close(uint amount, bytes memory signature) public
		;  payable { require(msg.sender == recipient); require(
		;  isValidSignature(amount, signature)); recipient.transfer(
		;  amount); selfdestruct(sender); }"            (Listing 2)
		:close JUMPDEST
		CALLER
		PUSH1 0x01
		SLOAD
		EQ
		PUSH :auth
		JUMPI
	` + revertTail + `
		:auth JUMPDEST
		; digest = keccak256(address(this) . amount)
		ADDRESS
		PUSH1 0x00
		MSTORE
		PUSH1 0x04
		CALLDATALOAD
		PUSH1 0x20
		MSTORE
		PUSH1 0x40
		PUSH1 0x00
		KECCAK256
		; ECRECOVER input: digest . v . r . s at mem[0..128)
		PUSH1 0x00
		MSTORE
		PUSH1 0x64
		CALLDATALOAD   ; v
		PUSH1 0x20
		MSTORE
		PUSH1 0x24
		CALLDATALOAD   ; r
		PUSH1 0x40
		MSTORE
		PUSH1 0x44
		CALLDATALOAD   ; s
		PUSH1 0x60
		MSTORE
		PUSH1 0x20     ; out size
		PUSH1 0x80     ; out offset
		PUSH1 0x80     ; in size
		PUSH1 0x00     ; in offset
		PUSH1 0x01     ; ECRECOVER precompile
		PUSH2 0xffff   ; gas
		STATICCALL
		POP
		PUSH1 0x80
		MLOAD          ; recovered signer
		PUSH1 0x00
		SLOAD          ; stored sender
		EQ
		PUSH :paysig
		JUMPI
	` + revertTail + `
		:paysig JUMPDEST
		; recipient.transfer(amount)
		PUSH1 0x00     ; out size
		PUSH1 0x00     ; out offset
		PUSH1 0x00     ; in size
		PUSH1 0x00     ; in offset
		PUSH1 0x04
		CALLDATALOAD   ; value = amount
		PUSH1 0x01
		SLOAD          ; to = receiver
		PUSH2 0xffff   ; gas
		CALL
		ISZERO
		PUSH :payfail
		JUMPI
		; selfdestruct(sender): refunds the remaining channel balance
		PUSH1 0x00
		SLOAD
		SELFDESTRUCT
		:payfail JUMPDEST
	` + revertTail
	return asm.MustAssemble(src)
}

// channelConstructorPrologue stores the constructor arguments and the
// sensor reading: "assembly { 0x0c // IoT sensor opcode; sstore(0x0c) }"
// (Listing 2). Args layout appended to init code:
// sender(32) . receiver(32) . sensorID(32) . sensorParam(32).
const channelConstructorPrologue = `
	; copy the 128 argument bytes from the end of the init code
	PUSH1 0x80
	CODESIZE
	PUSH1 0x80
	SWAP1
	SUB
	PUSH1 0x00
	CODECOPY
	; sender -> slot 0
	PUSH1 0x00
	MLOAD
	PUSH1 0x00
	SSTORE
	; receiver -> slot 1
	PUSH1 0x20
	MLOAD
	PUSH1 0x01
	SSTORE
	; SENSOR(id, param) -> slot 0x0c
	PUSH1 0x60
	MLOAD          ; param
	PUSH1 0x40
	MLOAD          ; id (popped first by SENSOR)
	SENSOR
	PUSH1 0x0c
	SSTORE
`

// PaymentChannelInitCode builds deployable init code for a channel with
// the given parties and sensor configuration.
func PaymentChannelInitCode(sender, receiver types.Address, sensorID, sensorParam uint64) []byte {
	args := make([]byte, 0, 128)
	args = append(args, addrWord(sender)...)
	args = append(args, addrWord(receiver)...)
	args = append(args, uintWord(sensorID)...)
	args = append(args, uintWord(sensorParam)...)
	return WrapDeploy(channelConstructorPrologue, PaymentChannelRuntime(), args)
}

// TemplateRuntime assembles the factory's runtime. The child channel
// init code (without its trailing args) is embedded as data; the factory
// appends fresh args on each create.
func TemplateRuntime() []byte {
	// The embedded child init code: channel constructor + channel
	// runtime, with args appended at create time.
	child := WrapDeploy(channelConstructorPrologue, PaymentChannelRuntime(), nil)
	childLen := len(child)

	src := fmt.Sprintf(`
		; --- dispatch -------------------------------------------------
		CALLDATASIZE
		ISZERO
		PUSH :receive
		JUMPI
		PUSH1 0x00
		CALLDATALOAD
		PUSH1 0xe0
		SHR
		DUP1
		PUSH4 %s
		EQ
		PUSH :recv
		JUMPI
		DUP1
		PUSH4 %s
		EQ
		PUSH :clock
		JUMPI
		DUP1
		PUSH4 %s
		EQ
		PUSH :create
		JUMPI
		DUP1
		PUSH4 %s
		EQ
		PUSH :chanat
		JUMPI
	`+revertTail+`

		:receive JUMPDEST   ; deposits lock money in the template
		STOP

		:recv JUMPDEST
		PUSH1 0x00
		SLOAD
	`+returnWord+`

		:clock JUMPDEST
		PUSH1 0x01
		SLOAD
	`+returnWord+`

		:chanat JUMPDEST
		PUSH1 0x04
		CALLDATALOAD
		PUSH1 0x0f
		AND
		PUSH1 0x10
		ADD
		SLOAD
	`+returnWord+`

		; --- createPaymentChannel(sensorParam) --------------------------
		; "newPaymentChannel = new PaymentChannel(receiver, Money);
		;  PaymentChannels.push(newPaymentChannel);
		;  Logical-Clock += 1;"                          (Listing 1)
		:create JUMPDEST
		; copy the embedded child init code to memory 0
		PUSH2 %#04x     ; child length
		PUSH :child
		PUSH1 0x00
		CODECOPY
		; arg 1: sender = the caller opening the channel
		CALLER
		PUSH2 %#04x     ; childLen
		MSTORE
		; arg 2: receiver from template storage
		PUSH1 0x00
		SLOAD
		PUSH2 %#04x     ; childLen + 32
		MSTORE
		; arg 3: sensor id = temperature by default
		PUSH1 0x01
		PUSH2 %#04x     ; childLen + 64
		MSTORE
		; arg 4: sensor param from calldata
		PUSH1 0x04
		CALLDATALOAD
		PUSH2 %#04x     ; childLen + 96
		MSTORE
		; CREATE(value=callvalue, offset=0, size=childLen+128)
		PUSH2 %#04x     ; childLen + 128
		PUSH1 0x00
		CALLVALUE
		CREATE
		DUP1
		ISZERO
		PUSH :createfail
		JUMPI
		; Logical-Clock += 1
		PUSH1 0x01
		SLOAD
		PUSH1 0x01
		ADD
		DUP1
		PUSH1 0x01
		SSTORE
		; channel ring slot = 0x10 + (clock & 0x0f)
		PUSH1 0x0f
		AND
		PUSH1 0x10
		ADD
		DUP2
		SWAP1
		SSTORE
		; return the channel address
	`+returnWord+`
		:createfail JUMPDEST
	`+revertTail+`
		:child JUMPDEST
	`,
		selHex(SigTemplateReceiver), selHex(SigLogicalClock),
		selHex(SigCreateChannel), selHex(SigChannelAt),
		childLen, childLen, childLen+32, childLen+64, childLen+96, childLen+128,
	)
	code := asm.MustAssemble(src)
	// Replace the trailing :child JUMPDEST marker with the child init
	// code itself.
	return append(code[:len(code)-1], child...)
}

// templateConstructorPrologue stores the receiver argument.
const templateConstructorPrologue = `
	PUSH1 0x20
	CODESIZE
	PUSH1 0x20
	SWAP1
	SUB
	PUSH1 0x00
	CODECOPY
	PUSH1 0x00
	MLOAD
	PUSH1 0x00
	SSTORE
`

// TemplateInitCode builds deployable init code for the factory template
// with the given service-provider (receiver) address.
func TemplateInitCode(receiver types.Address) []byte {
	return WrapDeploy(templateConstructorPrologue, TemplateRuntime(), addrWord(receiver))
}

// WrapDeploy builds init code: run prologue, then copy runtime to memory
// and return it, with args appended after the runtime (Solidity
// constructor-argument convention). Two-pass assembly keeps the
// label-free offsets exact: all size/offset literals use fixed-width
// PUSH2.
func WrapDeploy(prologue string, runtime, args []byte) []byte {
	build := func(rtOff int) []byte {
		src := fmt.Sprintf(`
			%s
			PUSH2 %#04x   ; runtime length
			PUSH2 %#04x   ; runtime offset
			PUSH1 0x00
			CODECOPY
			PUSH2 %#04x   ; runtime length
			PUSH1 0x00
			RETURN
		`, prologue, len(runtime), rtOff, len(runtime))
		return asm.MustAssemble(src)
	}
	ctor := build(0)
	ctor = build(len(ctor)) // second pass with the real offset
	out := make([]byte, 0, len(ctor)+len(runtime)+len(args))
	out = append(out, ctor...)
	out = append(out, runtime...)
	out = append(out, args...)
	return out
}

// --- calldata and digest helpers ------------------------------------

func addrWord(a types.Address) []byte {
	w := make([]byte, 32)
	copy(w[12:], a[:])
	return w
}

func uintWord(v uint64) []byte {
	w := make([]byte, 32)
	binary.BigEndian.PutUint64(w[24:], v)
	return w
}

// Calldata builds selector-prefixed calldata from 32-byte word args.
func Calldata(sig string, words ...[]byte) []byte {
	sel := Selector(sig)
	out := make([]byte, 0, 4+32*len(words))
	out = append(out, sel[:]...)
	for _, w := range words {
		if len(w) != 32 {
			padded := make([]byte, 32)
			copy(padded[32-len(w):], w)
			w = padded
		}
		out = append(out, w...)
	}
	return out
}

// CreateChannelCalldata builds calldata for
// createPaymentChannel(sensorParam).
func CreateChannelCalldata(sensorParam uint64) []byte {
	return Calldata(SigCreateChannel, uintWord(sensorParam))
}

// ChannelAtCalldata builds calldata for channelAt(index).
func ChannelAtCalldata(index uint64) []byte {
	return Calldata(SigChannelAt, uintWord(index))
}

// RegisterCalldata builds calldata for register(seq, cumulative).
func RegisterCalldata(seq, cumulative uint64) []byte {
	return Calldata(SigRegister, uintWord(seq), uintWord(cumulative))
}

// PaymentDigest is the message a payment signature covers:
// keccak256(channelAddress_word . amount_word). The contract's close()
// recomputes exactly this.
func PaymentDigest(channel types.Address, amount uint64) types.Hash {
	return types.HashConcat(addrWord(channel), uintWord(amount))
}

// CloseCalldata builds calldata for close(amount, r, s, v) from a
// serialized 65-byte signature.
func CloseCalldata(amount uint64, sig *secp256k1.Signature) []byte {
	raw := sig.Serialize()
	r := raw[0:32]
	s := raw[32:64]
	v := []byte{raw[64]}
	return Calldata(SigClose, uintWord(amount), r, s, v)
}

// WordToAddress extracts an address from a 32-byte return word.
func WordToAddress(word []byte) types.Address {
	var w uint256.Int
	w.SetBytes(word)
	b := w.Bytes32()
	return types.BytesToAddress(b[12:])
}

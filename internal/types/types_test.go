package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBytesToHashPadding(t *testing.T) {
	h := BytesToHash([]byte{0x01, 0x02})
	if h[30] != 0x01 || h[31] != 0x02 {
		t.Fatalf("short input not right-aligned: %x", h)
	}
	for i := 0; i < 30; i++ {
		if h[i] != 0 {
			t.Fatalf("padding byte %d not zero", i)
		}
	}
	long := make([]byte, 40)
	for i := range long {
		long[i] = byte(i)
	}
	h2 := BytesToHash(long)
	if h2[0] != 8 || h2[31] != 39 {
		t.Fatalf("long input not truncated from the left: %x", h2)
	}
}

func TestHashHexRoundTrip(t *testing.T) {
	h := HashData([]byte("round trip"))
	parsed, err := HexToHash(h.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != h {
		t.Fatal("hash hex round trip failed")
	}
	if !strings.HasPrefix(h.Hex(), "0x") {
		t.Fatal("Hex missing 0x prefix")
	}
}

func TestHexToHashErrors(t *testing.T) {
	if _, err := HexToHash("0x1234"); err == nil {
		t.Fatal("short hex accepted")
	}
	if _, err := HexToHash("0x" + strings.Repeat("zz", 32)); err == nil {
		t.Fatal("non-hex accepted")
	}
}

func TestAddressHexRoundTrip(t *testing.T) {
	a := BytesToAddress([]byte{0xde, 0xad, 0xbe, 0xef})
	parsed, err := HexToAddress(a.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != a {
		t.Fatal("address hex round trip failed")
	}
}

func TestAddressHashForm(t *testing.T) {
	a := MustHexToAddress("0x00112233445566778899aabbccddeeff00112233")
	h := a.Hash()
	// The address occupies the low 20 bytes of the 32-byte word.
	if BytesToAddress(h[12:]) != a {
		t.Fatal("address word form misaligned")
	}
	for i := 0; i < 12; i++ {
		if h[i] != 0 {
			t.Fatal("address word padding not zero")
		}
	}
}

func TestIsZero(t *testing.T) {
	if !(Hash{}).IsZero() {
		t.Fatal("zero hash not zero")
	}
	if !(Address{}).IsZero() {
		t.Fatal("zero address not zero")
	}
	if HashData([]byte("x")).IsZero() {
		t.Fatal("non-zero hash reported zero")
	}
}

func TestHashConcatMatchesHashData(t *testing.T) {
	a, b := []byte("hello "), []byte("world")
	if HashConcat(a, b) != HashData([]byte("hello world")) {
		t.Fatal("HashConcat mismatch")
	}
}

func TestContractAddressDistinct(t *testing.T) {
	sender := MustHexToAddress("0x1111111111111111111111111111111111111111")
	seen := make(map[Address]bool)
	for nonce := uint64(0); nonce < 100; nonce++ {
		a := ContractAddress(sender, nonce)
		if seen[a] {
			t.Fatalf("contract address collision at nonce %d", nonce)
		}
		seen[a] = true
	}
	other := MustHexToAddress("0x2222222222222222222222222222222222222222")
	if ContractAddress(sender, 0) == ContractAddress(other, 0) {
		t.Fatal("different senders produced same contract address")
	}
}

func TestContractAddressQuick(t *testing.T) {
	// Property: derivation is a pure function.
	f := func(raw [20]byte, nonce uint64) bool {
		a := Address(raw)
		return ContractAddress(a, nonce) == ContractAddress(a, nonce)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package types holds the primitive Ethereum-style value types shared by
// every layer of the repository: 32-byte hashes, 20-byte addresses and
// wei amounts. It sits below all other internal packages and has no
// dependencies besides the standard library and the local keccak package.
package types

import (
	"encoding/hex"
	"errors"
	"fmt"

	"tinyevm/internal/keccak"
)

// HashLength is the byte length of a Hash.
const HashLength = 32

// AddressLength is the byte length of an Address.
const AddressLength = 20

// Hash is a 32-byte Keccak-256 digest.
type Hash [HashLength]byte

// Address is a 20-byte Ethereum-style account address: the low 20 bytes
// of the Keccak-256 hash of the uncompressed public key.
type Address [AddressLength]byte

// ErrBadLength indicates a hex string of the wrong size for the target
// type.
var ErrBadLength = errors.New("types: wrong byte length")

// BytesToHash converts b to a Hash, left-padding with zeros if b is
// shorter than 32 bytes and keeping the rightmost 32 bytes if longer.
func BytesToHash(b []byte) Hash {
	var h Hash
	if len(b) > HashLength {
		b = b[len(b)-HashLength:]
	}
	copy(h[HashLength-len(b):], b)
	return h
}

// HashData returns the Keccak-256 hash of data as a Hash.
func HashData(data []byte) Hash {
	return Hash(keccak.Sum256(data))
}

// HashConcat returns the Keccak-256 hash of the concatenation of parts.
func HashConcat(parts ...[]byte) Hash {
	return Hash(keccak.Sum256Concat(parts...))
}

// Hex returns the 0x-prefixed hexadecimal form of h.
func (h Hash) Hex() string { return "0x" + hex.EncodeToString(h[:]) }

// String implements fmt.Stringer.
func (h Hash) String() string { return h.Hex() }

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool { return h == Hash{} }

// Bytes returns h as a byte slice.
func (h Hash) Bytes() []byte { return h[:] }

// HexToHash parses a 0x-prefixed or bare 64-digit hex string.
func HexToHash(s string) (Hash, error) {
	var h Hash
	b, err := parseHex(s, HashLength)
	if err != nil {
		return h, err
	}
	copy(h[:], b)
	return h, nil
}

// BytesToAddress converts b to an Address, left-padding with zeros if b
// is shorter than 20 bytes and keeping the rightmost 20 bytes if longer.
func BytesToAddress(b []byte) Address {
	var a Address
	if len(b) > AddressLength {
		b = b[len(b)-AddressLength:]
	}
	copy(a[AddressLength-len(b):], b)
	return a
}

// Hex returns the 0x-prefixed hexadecimal form of a.
func (a Address) Hex() string { return "0x" + hex.EncodeToString(a[:]) }

// String implements fmt.Stringer.
func (a Address) String() string { return a.Hex() }

// IsZero reports whether a is the zero address.
func (a Address) IsZero() bool { return a == Address{} }

// Bytes returns a as a byte slice.
func (a Address) Bytes() []byte { return a[:] }

// Hash returns the address left-padded to 32 bytes, the EVM word form.
func (a Address) Hash() Hash { return BytesToHash(a[:]) }

// HexToAddress parses a 0x-prefixed or bare 40-digit hex string.
func HexToAddress(s string) (Address, error) {
	var a Address
	b, err := parseHex(s, AddressLength)
	if err != nil {
		return a, err
	}
	copy(a[:], b)
	return a, nil
}

// MustHexToAddress parses s and panics on error; for tests and constants.
func MustHexToAddress(s string) Address {
	a, err := HexToAddress(s)
	if err != nil {
		panic(err)
	}
	return a
}

func parseHex(s string, want int) ([]byte, error) {
	if len(s) >= 2 && (s[:2] == "0x" || s[:2] == "0X") {
		s = s[2:]
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("types: %w", err)
	}
	if len(b) != want {
		return nil, fmt.Errorf("%w: got %d bytes, want %d", ErrBadLength, len(b), want)
	}
	return b, nil
}

// ContractAddress derives the address of a contract created by sender
// with the given account nonce. Mainline Ethereum RLP-encodes
// (sender, nonce); this repository uses the simpler but equally
// collision-resistant keccak256(sender || nonce-be8)[12:].
func ContractAddress(sender Address, nonce uint64) Address {
	var nb [8]byte
	for i := 0; i < 8; i++ {
		nb[7-i] = byte(nonce >> (8 * i))
	}
	h := keccak.Sum256Concat(sender[:], nb[:])
	return BytesToAddress(h[12:])
}

package rpc

import (
	"errors"
	"testing"

	"tinyevm/internal/protocol"
)

// TestErrorKindsExhaustive asserts that the wire-kind table covers the
// complete protocol sentinel taxonomy in both directions: every entry
// of protocol.Sentinels() maps to a non-empty stable kind, and that
// kind rebuilds the identical sentinel. A protocol error added without
// an errorKinds entry fails here (and protocol's own registry test
// fails first if it isn't registered at all).
func TestErrorKindsExhaustive(t *testing.T) {
	for name, sentinel := range protocol.Sentinels() {
		kind := KindOf(sentinel)
		if kind == "" {
			t.Errorf("protocol.%s has no wire kind mapping", name)
			continue
		}
		back := sentinelOf(kind)
		if back == nil {
			t.Errorf("kind %q (protocol.%s) does not map back to a sentinel", kind, name)
			continue
		}
		if !errors.Is(back, sentinel) || !errors.Is(sentinel, back) {
			t.Errorf("kind %q round-trips protocol.%s to a different sentinel: %v", kind, name, back)
		}
	}
}

// TestErrorKindsStable pins table hygiene: kinds are unique (a kind
// that appeared twice would silently shadow one sentinel's rebuild)
// and non-empty, and wrapped errors match their sentinel's kind.
func TestErrorKindsStable(t *testing.T) {
	seen := make(map[string]error)
	for _, ek := range errorKinds {
		if ek.kind == "" {
			t.Errorf("empty kind for %v", ek.err)
		}
		if prev, dup := seen[ek.kind]; dup {
			t.Errorf("kind %q mapped to both %v and %v", ek.kind, prev, ek.err)
		}
		seen[ek.kind] = ek.err
	}

	wrapped := protocol.Sentinels()["ErrStaleSequence"]
	if got := KindOf(wrapExample(wrapped)); got != "stale-sequence" {
		t.Errorf("wrapped sentinel kind = %q, want stale-sequence", got)
	}
}

func wrapExample(err error) error {
	return &protocol.ChannelError{Op: "pay", Channel: 7, Err: err}
}

package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"tinyevm/internal/protocol"
)

// postRaw sends a raw JSON-RPC payload to the gateway under test and
// returns the HTTP status and body.
func postRaw(t *testing.T, c *Client, payload string) (int, []byte) {
	t.Helper()
	resp, err := c.hc.Post(c.url, "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestBatchEndToEnd drives a mixed batch through the live gateway: two
// good payments, a typed protocol failure, and an unknown method, all
// in one HTTP request. Per-entry results land in Add order, and the
// failing entries carry their rebuilt typed errors without disturbing
// their neighbours.
func TestBatchEndToEnd(t *testing.T) {
	_, client := newTestGateway(t)
	ctx := context.Background()

	provider, err := client.Provider(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.AddNode(ctx, "vehicle"); err != nil {
		t.Fatal(err)
	}
	ch, err := client.OpenChannel(ctx, "vehicle", provider.Name, 10_000, 0)
	if err != nil {
		t.Fatal(err)
	}

	var p1, p2 Payment
	var head struct {
		Head uint64 `json:"head"`
	}
	b := client.NewBatch().
		Pay("vehicle", ch.ID, 100, &p1).
		Pay("vehicle", 9999, 1, nil). // unknown channel: typed failure
		Pay("vehicle", ch.ID, 50, &p2).
		Add("tinyevm_noSuchMethod", nil, nil).
		Add("tinyevm_head", nil, &head)
	if b.Len() != 5 {
		t.Fatalf("batch length = %d, want 5", b.Len())
	}

	errs, err := b.Call(ctx)
	if err != nil {
		t.Fatalf("batch call: %v", err)
	}
	if len(errs) != 5 {
		t.Fatalf("per-entry errors = %d, want 5", len(errs))
	}
	if errs[0] != nil || errs[2] != nil || errs[4] != nil {
		t.Fatalf("good entries failed: %v / %v / %v", errs[0], errs[2], errs[4])
	}
	if !errors.Is(errs[1], protocol.ErrUnknownChannel) {
		t.Errorf("entry 1 error = %v, want ErrUnknownChannel", errs[1])
	}
	var rpcErr *Error
	if !errors.As(errs[3], &rpcErr) || rpcErr.Code != codeMethodNotFound {
		t.Errorf("entry 3 error = %v, want method-not-found", errs[3])
	}
	// Entries of one batch execute concurrently, so the two same-channel
	// pays land in either order: they must occupy seqs 1 and 2, and
	// whichever ran second carries the full cumulative.
	if !(p1.Seq == 1 && p2.Seq == 2 || p1.Seq == 2 && p2.Seq == 1) {
		t.Errorf("payment seqs = %d/%d, want {1,2}", p1.Seq, p2.Seq)
	}
	last := p1
	if p2.Seq > p1.Seq {
		last = p2
	}
	if last.Cumulative != 150 {
		t.Errorf("final payment cumulative = %d, want 150", last.Cumulative)
	}
	got, err := client.Channel(ctx, "vehicle", ch.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cumulative != 150 || got.Seq != 2 {
		t.Errorf("channel after batch: cum=%d seq=%d, want 150/2", got.Cumulative, got.Seq)
	}
}

// TestBatchWireShape pins the JSON-RPC 2.0 batch semantics on the raw
// wire: response order mirrors request order, notifications execute
// but are omitted, an all-notification batch answers 204, and an empty
// batch is a single invalid-request error object.
func TestBatchWireShape(t *testing.T) {
	_, client := newTestGateway(t)

	t.Run("order-preserved", func(t *testing.T) {
		// Distinctive out-of-order ids: the reply array must follow the
		// request array, not id order.
		status, body := postRaw(t, client, `[
			{"jsonrpc":"2.0","id":30,"method":"tinyevm_head"},
			{"jsonrpc":"2.0","id":10,"method":"tinyevm_head"},
			{"jsonrpc":"2.0","id":20,"method":"tinyevm_head"}]`)
		if status != http.StatusOK {
			t.Fatalf("status %d, body %s", status, body)
		}
		var resps []response
		if err := json.Unmarshal(body, &resps); err != nil {
			t.Fatalf("bad body %s: %v", body, err)
		}
		if len(resps) != 3 {
			t.Fatalf("responses = %d, want 3", len(resps))
		}
		for i, want := range []string{"30", "10", "20"} {
			if string(resps[i].ID) != want {
				t.Errorf("response %d id = %s, want %s", i, resps[i].ID, want)
			}
		}
	})

	t.Run("notifications-omitted", func(t *testing.T) {
		status, body := postRaw(t, client, `[
			{"jsonrpc":"2.0","method":"tinyevm_head"},
			{"jsonrpc":"2.0","id":1,"method":"tinyevm_head"}]`)
		if status != http.StatusOK {
			t.Fatalf("status %d, body %s", status, body)
		}
		var resps []response
		if err := json.Unmarshal(body, &resps); err != nil {
			t.Fatalf("bad body %s: %v", body, err)
		}
		if len(resps) != 1 || string(resps[0].ID) != "1" {
			t.Errorf("responses = %s, want only id 1", body)
		}
	})

	t.Run("all-notifications-204", func(t *testing.T) {
		status, body := postRaw(t, client, `[
			{"jsonrpc":"2.0","method":"tinyevm_head"},
			{"jsonrpc":"2.0","method":"tinyevm_head"}]`)
		if status != http.StatusNoContent {
			t.Fatalf("status %d, want 204 (body %s)", status, body)
		}
	})

	t.Run("empty-batch", func(t *testing.T) {
		status, body := postRaw(t, client, `[]`)
		if status != http.StatusOK {
			t.Fatalf("status %d, body %s", status, body)
		}
		var resp response
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("bad body %s: %v", body, err)
		}
		if resp.Error == nil || resp.Error.Code != codeInvalidRequest {
			t.Errorf("error = %+v, want invalid-request", resp.Error)
		}
	})

	t.Run("malformed-batch", func(t *testing.T) {
		status, body := postRaw(t, client, `[{"jsonrpc":`)
		if status != http.StatusOK {
			t.Fatalf("status %d, body %s", status, body)
		}
		var resp response
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("bad body %s: %v", body, err)
		}
		if resp.Error == nil || resp.Error.Code != codeParse {
			t.Errorf("error = %+v, want parse error", resp.Error)
		}
	})

	t.Run("bad-entry-among-good", func(t *testing.T) {
		// One entry is not a valid request object; the others still run.
		status, body := postRaw(t, client, `[
			{"jsonrpc":"2.0","id":1,"method":"tinyevm_head"},
			42,
			{"jsonrpc":"2.0","id":2,"method":"tinyevm_head"}]`)
		if status != http.StatusOK {
			t.Fatalf("status %d, body %s", status, body)
		}
		var resps []response
		if err := json.Unmarshal(body, &resps); err != nil {
			t.Fatalf("bad body %s: %v", body, err)
		}
		if len(resps) != 3 {
			t.Fatalf("responses = %d, want 3 (body %s)", len(resps), body)
		}
		if resps[0].Error != nil || resps[2].Error != nil {
			t.Errorf("good entries errored: %s", body)
		}
		if resps[1].Error == nil || resps[1].Error.Code != codeInvalidRequest {
			t.Errorf("bad entry = %+v, want invalid-request", resps[1])
		}
	})
}

// TestBatchConcurrentClients hammers the gateway with concurrent batch
// requests from many vehicles, each batching payments on its own
// channel — the sharded hot path executes entries of distinct batches
// (and within a batch) in parallel. Run under -race in CI.
func TestBatchConcurrentClients(t *testing.T) {
	_, client := newTestGateway(t)
	ctx := context.Background()

	provider, err := client.Provider(ctx)
	if err != nil {
		t.Fatal(err)
	}

	const vehicles = 24
	const pays = 8
	const amount = 3

	var wg sync.WaitGroup
	errCh := make(chan error, vehicles)
	for v := 0; v < vehicles; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			name := fmt.Sprintf("veh-%d", v)
			if _, err := client.AddNode(ctx, name); err != nil {
				errCh <- fmt.Errorf("%s add: %w", name, err)
				return
			}
			ch, err := client.OpenChannel(ctx, name, provider.Name, 10_000, 0)
			if err != nil {
				errCh <- fmt.Errorf("%s open: %w", name, err)
				return
			}
			b := client.NewBatch()
			for i := 0; i < pays; i++ {
				b.Pay(name, ch.ID, amount, nil)
			}
			errs, err := b.Call(ctx)
			if err != nil {
				errCh <- fmt.Errorf("%s batch: %w", name, err)
				return
			}
			for i, e := range errs {
				if e != nil {
					errCh <- fmt.Errorf("%s pay %d: %w", name, i, e)
					return
				}
			}
			got, err := client.Channel(ctx, name, ch.ID)
			if err != nil {
				errCh <- fmt.Errorf("%s channel: %w", name, err)
				return
			}
			if got.Cumulative != pays*amount {
				errCh <- fmt.Errorf("%s cumulative = %d, want %d", name, got.Cumulative, pays*amount)
			}
		}(v)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

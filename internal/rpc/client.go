package rpc

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"tinyevm/internal/chain"
	"tinyevm/internal/mst"
	"tinyevm/internal/types"
)

// Client is a Go client for the TinyEVM JSON-RPC gateway. It is safe
// for concurrent use. Errors returned by the gateway are rebuilt onto
// the protocol sentinels, so errors.Is(err, protocol.ErrStaleSequence)
// works on the client side of the wire.
type Client struct {
	url     string
	hc      *http.Client
	nextID  atomic.Uint64
	timeout time.Duration
	retries int
	backoff time.Duration
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRequestTimeout bounds every individual RPC attempt: each HTTP
// round trip runs under a context deadline of d (0 disables, the
// default). Long-poll methods (tinyevm_poll) should use a timeout
// comfortably above their server-side timeoutMs.
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithRetry makes Call retry transport-level failures (connection
// refused/reset, per-attempt timeout) up to max extra attempts, backing
// off linearly from backoff (attempt n sleeps n*backoff). Typed gateway
// errors — a *Error reply, including protocol-sentinel kinds — are
// never retried: the request reached the service and was answered.
//
// Note that retried requests are re-executed, not replayed: a payment
// whose response was lost in transit may be applied twice. Load
// generators accept that; accounting clients should retry at a higher
// level where the channel state can be inspected first.
func WithRetry(max int, backoff time.Duration) ClientOption {
	return func(c *Client) { c.retries, c.backoff = max, backoff }
}

// NewClient creates a client for the gateway at url (e.g.
// "http://127.0.0.1:8545"). httpClient nil uses http.DefaultClient.
func NewClient(url string, httpClient *http.Client, opts ...ClientOption) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{url: url, hc: httpClient}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Call performs one JSON-RPC call, decoding the result into out (out
// nil discards it). Transport failures are retried per WithRetry;
// gateway-level errors are returned immediately.
func (c *Client) Call(ctx context.Context, method string, params, out any) error {
	rawParams, err := json.Marshal(params)
	if err != nil {
		return fmt.Errorf("rpc: encoding params: %w", err)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.call(ctx, method, rawParams, out)
		if lastErr == nil || !retryable(lastErr) || attempt >= c.retries {
			return lastErr
		}
		if c.backoff > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Duration(attempt+1) * c.backoff):
			}
		} else if err := ctx.Err(); err != nil {
			return err
		}
	}
}

// retryable reports whether err is a transport-level failure. Gateway
// replies (*Error, typed or not) and caller-context cancellation are
// final.
func retryable(err error) bool {
	var rpcErr *Error
	if errors.As(err, &rpcErr) {
		return false
	}
	// Typed kinds rebuilt onto sentinels are gateway replies too.
	if kind := KindOf(err); kind != "" && kind != "canceled" && kind != "deadline-exceeded" {
		return false
	}
	return !errors.Is(err, context.Canceled)
}

// call is one attempt.
func (c *Client) call(ctx context.Context, method string, rawParams json.RawMessage, out any) error {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	id := c.nextID.Add(1)
	body, err := json.Marshal(request{
		Version: "2.0",
		ID:      json.RawMessage(fmt.Sprintf("%d", id)),
		Method:  method,
		Params:  rawParams,
	})
	if err != nil {
		return fmt.Errorf("rpc: encoding request: %w", err)
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(httpResp.Body, maxBody))
	if err != nil {
		return err
	}

	var resp response
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return fmt.Errorf("rpc: bad response (HTTP %d): %w", httpResp.StatusCode, err)
	}
	if resp.Error != nil {
		return remoteError(resp.Error)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(resp.Result, out)
}

// remoteError rebuilds a wire error. When the error data carries a
// typed kind, the returned error wraps the matching sentinel.
func remoteError(e *Error) error {
	if e.Data != nil && e.Data.Kind != "" {
		if sentinel := sentinelOf(e.Data.Kind); sentinel != nil {
			return fmt.Errorf("rpc: %w: %s", sentinel, e.Message)
		}
	}
	return e
}

// NodeInfo identifies a node on the gateway.
type NodeInfo struct {
	Name    string `json:"name"`
	Address string `json:"address"`
}

// Provider returns the gateway's provider node.
func (c *Client) Provider(ctx context.Context) (NodeInfo, error) {
	var out NodeInfo
	err := c.Call(ctx, "tinyevm_provider", nil, &out)
	return out, err
}

// AddNode creates a node (with the gateway's default temperature
// sensor installed).
func (c *Client) AddNode(ctx context.Context, name string) (NodeInfo, error) {
	var out NodeInfo
	err := c.Call(ctx, "tinyevm_addNode", map[string]string{"name": name}, &out)
	return out, err
}

// RegisterSensor installs a fixed-value sensor on a node.
func (c *Client) RegisterSensor(ctx context.Context, node string, id, value uint64) error {
	return c.Call(ctx, "tinyevm_registerSensor",
		map[string]any{"node": node, "id": id, "value": value}, nil)
}

// OpenChannel opens an off-chain channel from node toward peer (hex
// address or node name).
func (c *Client) OpenChannel(ctx context.Context, node, peer string, deposit, sensorParam uint64) (Channel, error) {
	var out Channel
	err := c.Call(ctx, "tinyevm_openChannel",
		map[string]any{"node": node, "peer": peer, "deposit": deposit, "sensorParam": sensorParam}, &out)
	return out, err
}

// Pay sends an off-chain payment.
func (c *Client) Pay(ctx context.Context, node string, channel, amount uint64) (Payment, error) {
	var out Payment
	err := c.Call(ctx, "tinyevm_pay",
		map[string]any{"node": node, "channel": channel, "amount": amount}, &out)
	return out, err
}

// CloseChannel runs the cooperative close handshake.
func (c *Client) CloseChannel(ctx context.Context, node string, channel uint64) (FinalState, error) {
	var out FinalState
	err := c.Call(ctx, "tinyevm_closeChannel",
		map[string]any{"node": node, "channel": channel}, &out)
	return out, err
}

// Channel fetches a channel snapshot.
func (c *Client) Channel(ctx context.Context, node string, channel uint64) (Channel, error) {
	var out Channel
	err := c.Call(ctx, "tinyevm_channel",
		map[string]any{"node": node, "channel": channel}, &out)
	return out, err
}

// Channels fetches every channel snapshot of a node.
func (c *Client) Channels(ctx context.Context, node string) ([]Channel, error) {
	var out []Channel
	err := c.Call(ctx, "tinyevm_channels", map[string]any{"node": node}, &out)
	return out, err
}

// Deposit locks funds into the on-chain template.
func (c *Client) Deposit(ctx context.Context, node string, amount uint64) (Receipt, error) {
	var out Receipt
	err := c.Call(ctx, "tinyevm_deposit",
		map[string]any{"node": node, "amount": amount}, &out)
	return out, err
}

// Commit submits a closed channel's final state on-chain.
func (c *Client) Commit(ctx context.Context, node string, channel uint64) (Receipt, error) {
	var out Receipt
	err := c.Call(ctx, "tinyevm_commit",
		map[string]any{"node": node, "channel": channel}, &out)
	return out, err
}

// Exit starts the on-chain challenge period.
func (c *Client) Exit(ctx context.Context, node string) (Receipt, error) {
	var out Receipt
	err := c.Call(ctx, "tinyevm_exit", map[string]any{"node": node}, &out)
	return out, err
}

// Settle dissolves the template after the challenge period.
func (c *Client) Settle(ctx context.Context, node string) (Receipt, error) {
	var out Receipt
	err := c.Call(ctx, "tinyevm_settle", map[string]any{"node": node}, &out)
	return out, err
}

// RunChallengePeriod advances the chain past the active exit deadline.
func (c *Client) RunChallengePeriod(ctx context.Context) error {
	return c.Call(ctx, "tinyevm_runChallengePeriod", nil, nil)
}

// Balance returns a main-chain balance (hex address or node name).
func (c *Client) Balance(ctx context.Context, address string) (uint64, error) {
	var out struct {
		Balance uint64 `json:"balance"`
	}
	err := c.Call(ctx, "tinyevm_balance", map[string]string{"address": address}, &out)
	return out.Balance, err
}

// Head returns the main-chain head block number.
func (c *Client) Head(ctx context.Context) (uint64, error) {
	var out struct {
		Head uint64 `json:"head"`
	}
	err := c.Call(ctx, "tinyevm_head", nil, &out)
	return out.Head, err
}

// NodeStatus returns the daemon's cluster view: height, head hash,
// peer count and role ("standalone" when the daemon is not clustered).
func (c *Client) NodeStatus(ctx context.Context) (NodeStatus, error) {
	var out NodeStatus
	err := c.Call(ctx, "tinyevm_nodeStatus", nil, &out)
	return out, err
}

// ServiceStats returns the sharded hot path's statistics: stripe
// count, per-stripe pending ops, seal-pipeline depth, journal sequence
// and node count.
func (c *Client) ServiceStats(ctx context.Context) (ServiceStats, error) {
	var out ServiceStats
	err := c.Call(ctx, "tinyevm_serviceStats", nil, &out)
	return out, err
}

// StoreStatus returns the daemon's durable-store status: backend kind,
// segment/compaction vitals and checkpoint position. Daemons without a
// store answer with a server error.
func (c *Client) StoreStatus(ctx context.Context) (StoreStatus, error) {
	var out StoreStatus
	err := c.Call(ctx, "tinyevm_storeStatus", nil, &out)
	return out, err
}

// StateProof fetches a light-client account proof for address (hex
// address or node name). The daemon must run the MST state commitment.
func (c *Client) StateProof(ctx context.Context, address string) (StateProof, error) {
	var out StateProof
	err := c.Call(ctx, "tinyevm_stateProof",
		map[string]string{"address": address}, &out)
	return out, err
}

// VerifyStateProof verifies a StateProof end to end on the client
// side: the account record must re-digest to the proven leaf value,
// the Merkle path must verify against the root, and the root must fold
// into exactly p.Commitment. A nil error means the proof is internally
// sound; the caller completes light-client verification by comparing
// p.Commitment against a block state commitment obtained from a source
// it trusts (it is NOT taken from the proving daemon's word).
func VerifyStateProof(p *StateProof) error {
	addr, err := types.HexToAddress(p.Address)
	if err != nil {
		return fmt.Errorf("rpc: state proof address: %w", err)
	}
	digest, err := types.HexToHash(p.AccountDigest)
	if err != nil {
		return fmt.Errorf("rpc: state proof digest: %w", err)
	}
	account, err := hex.DecodeString(p.Account)
	if err != nil {
		return fmt.Errorf("rpc: state proof account record: %w", err)
	}
	commitment, err := types.HexToHash(p.Commitment)
	if err != nil {
		return fmt.Errorf("rpc: state proof commitment: %w", err)
	}
	proof, root, err := decodeMapProof(p)
	if err != nil {
		return err
	}
	if err := chain.VerifyAccountRecord(addr, account, digest); err != nil {
		return err
	}
	return chain.VerifyAccountProof(commitment, &chain.AccountProof{
		Address:       addr,
		AccountDigest: digest,
		Sum:           p.Sum,
		Account:       account,
		Proof:         proof,
		Root:          root,
		Commitment:    commitment,
		Head:          p.Head,
	})
}

// decodeMapProof rebuilds the wire proof's Merkle path and root.
func decodeMapProof(p *StateProof) (mst.MapProof, mst.Root, error) {
	var (
		proof mst.MapProof
		root  mst.Root
		err   error
	)
	if proof.LeftHash, err = types.HexToHash(p.LeftHash); err != nil {
		return proof, root, fmt.Errorf("rpc: state proof path: %w", err)
	}
	if proof.RightHash, err = types.HexToHash(p.RightHash); err != nil {
		return proof, root, fmt.Errorf("rpc: state proof path: %w", err)
	}
	proof.LeftSum, proof.RightSum = p.LeftSum, p.RightSum
	for _, st := range p.Steps {
		step := mst.MapProofStep{Sum: st.Sum, SiblingSum: st.SiblingSum, Right: st.Right}
		if step.Key, err = hex.DecodeString(st.Key); err != nil {
			return proof, root, fmt.Errorf("rpc: state proof step key: %w", err)
		}
		if step.ValueHash, err = types.HexToHash(st.ValueHash); err != nil {
			return proof, root, fmt.Errorf("rpc: state proof step: %w", err)
		}
		if step.SiblingHash, err = types.HexToHash(st.SiblingHash); err != nil {
			return proof, root, fmt.Errorf("rpc: state proof step: %w", err)
		}
		proof.Steps = append(proof.Steps, step)
	}
	if root.Hash, err = types.HexToHash(p.RootHash); err != nil {
		return proof, root, fmt.Errorf("rpc: state proof root: %w", err)
	}
	root.Sum = p.RootSum
	return proof, root, nil
}

// BlockHash returns the hex hash of the sealed block at a height.
func (c *Client) BlockHash(ctx context.Context, number uint64) (string, error) {
	var out struct {
		Hash string `json:"hash"`
	}
	err := c.Call(ctx, "tinyevm_blockHash", map[string]uint64{"number": number}, &out)
	return out.Hash, err
}

// Subscribe opens an event subscription on a node and returns its id.
func (c *Client) Subscribe(ctx context.Context, node string) (string, error) {
	var out struct {
		Subscription string `json:"subscription"`
	}
	err := c.Call(ctx, "tinyevm_subscribe", map[string]string{"node": node}, &out)
	return out.Subscription, err
}

// Poll long-polls a subscription: it blocks server-side until at least
// one event arrives or timeoutMs expires, returning up to max events
// and whether the stream has closed.
func (c *Client) Poll(ctx context.Context, subscription string, max, timeoutMs int) ([]Event, bool, error) {
	var out struct {
		Events []Event `json:"events"`
		Closed bool    `json:"closed"`
	}
	err := c.Call(ctx, "tinyevm_poll",
		map[string]any{"subscription": subscription, "max": max, "timeoutMs": timeoutMs}, &out)
	return out.Events, out.Closed, err
}

// Unsubscribe cancels a subscription.
func (c *Client) Unsubscribe(ctx context.Context, subscription string) error {
	return c.Call(ctx, "tinyevm_unsubscribe",
		map[string]string{"subscription": subscription}, nil)
}

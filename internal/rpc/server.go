package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"tinyevm"
	"tinyevm/internal/device"
	"tinyevm/internal/protocol"
	"tinyevm/internal/types"
)

// maxBody bounds a request body (1 MiB).
const maxBody = 1 << 20

// maxBatch bounds the number of calls in one JSON-RPC batch request.
const maxBatch = 4096

// maxPollTimeout caps a long-poll wait.
const maxPollTimeout = 30 * time.Second

// DefaultSensorValue is the fixed temperature reading (centi-degrees C)
// registered on nodes created over RPC, so channel-contract
// constructors — which read the temperature sensor through the IoT
// opcode — work for remote clients that cannot install Go sensor
// handlers. Override per node with tinyevm_registerSensor.
const DefaultSensorValue = 2150

// Server serves the TinyEVM service over JSON-RPC 2.0. It implements
// http.Handler; every request is a POST carrying either a single
// JSON-RPC call or a batch (a JSON array of calls, per the spec).
type Server struct {
	svc *tinyevm.Service

	mu      sync.Mutex
	subs    map[string]*serverSub
	nextSub uint64
}

// subIdleTTL is how long a subscription may go unpolled before the
// server reaps it — abandoned clients (crashed, disconnected without
// tinyevm_unsubscribe) must not leak goroutines and event queues.
// The sweep runs on every request; a fully idle daemon also generates
// no events, so queues cannot grow while no sweep runs.
const subIdleTTL = 5 * time.Minute

// serverSub is one live subscription with its long-poll state.
type serverSub struct {
	events <-chan tinyevm.Event
	cancel context.CancelFunc

	// lastPoll (guarded by the server mutex) drives idle reaping.
	lastPoll time.Time

	// pollMu serializes concurrent polls on the same subscription.
	pollMu sync.Mutex
}

// sweepLocked reaps subscriptions idle past the TTL. Callers hold s.mu.
func (s *Server) sweepLocked(now time.Time) {
	for id, sub := range s.subs {
		if now.Sub(sub.lastPoll) > subIdleTTL {
			sub.cancel()
			delete(s.subs, id)
		}
	}
}

// NewServer wraps a service.
func NewServer(svc *tinyevm.Service) *Server {
	return &Server{svc: svc, subs: make(map[string]*serverSub)}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		s.reply(w, nil, nil, &Error{Code: codeParse, Message: err.Error()})
		return
	}
	s.mu.Lock()
	s.sweepLocked(time.Now())
	s.mu.Unlock()
	if isBatch(body) {
		s.serveBatch(w, r, body)
		return
	}
	var req request
	if err := json.Unmarshal(body, &req); err != nil {
		s.reply(w, nil, nil, &Error{Code: codeParse, Message: "parse error: " + err.Error()})
		return
	}
	if req.Version != "2.0" || req.Method == "" {
		s.reply(w, req.ID, nil, &Error{Code: codeInvalidRequest, Message: "invalid request"})
		return
	}
	result, rpcErr := s.dispatch(r.Context(), req.Method, req.Params)
	s.reply(w, req.ID, result, rpcErr)
}

// isBatch reports whether the body's first non-whitespace byte opens a
// JSON array (a JSON-RPC 2.0 batch call).
func isBatch(body []byte) bool {
	for _, b := range body {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		default:
			return b == '['
		}
	}
	return false
}

// serveBatch handles a JSON-RPC 2.0 batch: the entries execute as
// concurrent tasks (the spec explicitly allows any processing order,
// and the sharded service turns that freedom into real parallelism —
// payments on disjoint channel pairs in one batch proceed under
// different shard locks), while the response array preserves the
// request order entry-for-entry. Notifications (entries without an id)
// are executed but produce no response entry; a batch of only
// notifications yields 204 No Content, per spec.
func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request, body []byte) {
	var raws []json.RawMessage
	if err := json.Unmarshal(body, &raws); err != nil {
		s.reply(w, nil, nil, &Error{Code: codeParse, Message: "parse error: " + err.Error()})
		return
	}
	if len(raws) == 0 {
		s.reply(w, nil, nil, &Error{Code: codeInvalidRequest, Message: "empty batch"})
		return
	}
	if len(raws) > maxBatch {
		s.reply(w, nil, nil, &Error{Code: codeInvalidRequest, Message: fmt.Sprintf("batch exceeds %d calls", maxBatch)})
		return
	}

	responses := make([]*response, len(raws))
	var wg sync.WaitGroup
	for i, raw := range raws {
		wg.Add(1)
		go func(i int, raw json.RawMessage) {
			defer wg.Done()
			responses[i] = s.handleOne(r.Context(), raw)
		}(i, raw)
	}
	wg.Wait()

	out := make([]response, 0, len(responses))
	for _, resp := range responses {
		if resp != nil {
			out = append(out, *resp)
		}
	}
	if len(out) == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out) //nolint:errcheck // client gone
}

// handleOne executes one batch entry and builds its response; nil for
// notifications (no id) and malformed non-object entries get the
// per-entry error object the spec prescribes.
func (s *Server) handleOne(ctx context.Context, raw json.RawMessage) *response {
	var req request
	if err := json.Unmarshal(raw, &req); err != nil {
		return buildResponse(nil, nil, &Error{Code: codeInvalidRequest, Message: "invalid request: " + err.Error()})
	}
	if req.Version != "2.0" || req.Method == "" {
		return buildResponse(req.ID, nil, &Error{Code: codeInvalidRequest, Message: "invalid request"})
	}
	result, rpcErr := s.dispatch(ctx, req.Method, req.Params)
	if len(req.ID) == 0 {
		return nil // notification: executed, never answered
	}
	return buildResponse(req.ID, result, rpcErr)
}

// buildResponse assembles one wire response object.
func buildResponse(id json.RawMessage, result any, rpcErr *Error) *response {
	resp := &response{Version: "2.0", ID: id}
	if rpcErr != nil {
		resp.Error = rpcErr
		return resp
	}
	raw, err := json.Marshal(result)
	if err != nil {
		resp.Error = &Error{Code: codeServer, Message: err.Error()}
		return resp
	}
	resp.Result = raw
	return resp
}

func (s *Server) reply(w http.ResponseWriter, id json.RawMessage, result any, rpcErr *Error) {
	resp := buildResponse(id, result, rpcErr)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck // client gone
}

// decode unmarshals params strictly into dst.
func decode(params json.RawMessage, dst any) *Error {
	if len(params) == 0 {
		params = []byte("{}")
	}
	dec := json.NewDecoder(bytes.NewReader(params))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return &Error{Code: codeInvalidParams, Message: "invalid params: " + err.Error()}
	}
	return nil
}

// node resolves a node name.
func (s *Server) node(name string) (*tinyevm.ServiceNode, *Error) {
	sn, ok := s.svc.Node(name)
	if !ok {
		return nil, toError(fmt.Errorf("%w: %q", tinyevm.ErrUnknownNode, name))
	}
	return sn, nil
}

// addr parses a peer field holding either a hex address or a node name.
func (s *Server) addr(v string) (types.Address, *Error) {
	if strings.HasPrefix(v, "0x") {
		a, err := types.HexToAddress(v)
		if err != nil {
			return types.Address{}, &Error{Code: codeInvalidParams, Message: err.Error()}
		}
		return a, nil
	}
	sn, rpcErr := s.node(v)
	if rpcErr != nil {
		return types.Address{}, rpcErr
	}
	return sn.Address(), nil
}

func toReceipt(r *tinyevm.Receipt) Receipt {
	out := Receipt{Status: r.Status, GasUsed: r.GasUsed, Block: r.BlockNumber}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return out
}

// dispatch routes one method call.
func (s *Server) dispatch(ctx context.Context, method string, params json.RawMessage) (any, *Error) {
	switch method {
	case "tinyevm_provider":
		p := s.svc.Provider()
		return map[string]string{"name": p.Name(), "address": p.Address().Hex()}, nil

	case "tinyevm_addNode":
		var in struct {
			Name string `json:"name"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		sn, err := s.svc.AddNode(ctx, in.Name)
		if err != nil {
			return nil, toError(err)
		}
		// Journaled registration: on a durable deployment the default
		// sensor is replayed before the channel ops that read it.
		if err := sn.RegisterSensorValue(ctx, device.SensorTemperature, DefaultSensorValue); err != nil {
			return nil, toError(err)
		}
		return map[string]string{"name": sn.Name(), "address": sn.Address().Hex()}, nil

	case "tinyevm_registerSensor":
		var in struct {
			Node  string `json:"node"`
			ID    uint64 `json:"id"`
			Value uint64 `json:"value"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		sn, rpcErr := s.node(in.Node)
		if rpcErr != nil {
			return nil, rpcErr
		}
		if err := sn.RegisterSensorValue(ctx, in.ID, in.Value); err != nil {
			return nil, toError(err)
		}
		return map[string]bool{"ok": true}, nil

	case "tinyevm_openChannel":
		var in struct {
			Node        string `json:"node"`
			Peer        string `json:"peer"`
			Deposit     uint64 `json:"deposit"`
			SensorParam uint64 `json:"sensorParam"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		sn, rpcErr := s.node(in.Node)
		if rpcErr != nil {
			return nil, rpcErr
		}
		peer, rpcErr := s.addr(in.Peer)
		if rpcErr != nil {
			return nil, rpcErr
		}
		cs, err := sn.OpenChannel(ctx, peer, in.Deposit, in.SensorParam)
		if err != nil {
			return nil, toError(err)
		}
		return toChannel(cs), nil

	case "tinyevm_pay":
		var in struct {
			Node    string `json:"node"`
			Channel uint64 `json:"channel"`
			Amount  uint64 `json:"amount"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		sn, rpcErr := s.node(in.Node)
		if rpcErr != nil {
			return nil, rpcErr
		}
		pay, err := sn.Pay(ctx, in.Channel, in.Amount)
		if err != nil {
			return nil, toError(err)
		}
		return Payment{Channel: in.Channel, Seq: pay.Seq, Cumulative: pay.Cumulative}, nil

	case "tinyevm_closeChannel":
		var in struct {
			Node    string `json:"node"`
			Channel uint64 `json:"channel"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		sn, rpcErr := s.node(in.Node)
		if rpcErr != nil {
			return nil, rpcErr
		}
		fs, err := sn.Close(ctx, in.Channel)
		if err != nil {
			return nil, toError(err)
		}
		return FinalState{
			Channel:    in.Channel,
			Sender:     fs.Sender.Hex(),
			Receiver:   fs.Receiver.Hex(),
			Seq:        fs.Seq,
			Cumulative: fs.Cumulative,
			Signed:     fs.VerifySignatures() == nil,
		}, nil

	case "tinyevm_channel":
		var in struct {
			Node    string `json:"node"`
			Channel uint64 `json:"channel"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		sn, rpcErr := s.node(in.Node)
		if rpcErr != nil {
			return nil, rpcErr
		}
		cs, ok, err := sn.Channel(ctx, in.Channel)
		if err != nil {
			return nil, toError(err)
		}
		if !ok {
			return nil, toError(fmt.Errorf("%w: %d", protocol.ErrUnknownChannel, in.Channel))
		}
		return toChannel(cs), nil

	case "tinyevm_channels":
		var in struct {
			Node string `json:"node"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		sn, rpcErr := s.node(in.Node)
		if rpcErr != nil {
			return nil, rpcErr
		}
		list, err := sn.Channels(ctx)
		if err != nil {
			return nil, toError(err)
		}
		out := make([]Channel, 0, len(list))
		for _, cs := range list {
			out = append(out, toChannel(cs))
		}
		return out, nil

	case "tinyevm_deposit":
		var in struct {
			Node   string `json:"node"`
			Amount uint64 `json:"amount"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		sn, rpcErr := s.node(in.Node)
		if rpcErr != nil {
			return nil, rpcErr
		}
		r, err := sn.Deposit(ctx, in.Amount)
		if err != nil {
			return nil, toError(err)
		}
		return toReceipt(r), nil

	case "tinyevm_commit":
		var in struct {
			Node    string `json:"node"`
			Channel uint64 `json:"channel"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		sn, rpcErr := s.node(in.Node)
		if rpcErr != nil {
			return nil, rpcErr
		}
		cs, ok, err := sn.Channel(ctx, in.Channel)
		if err != nil {
			return nil, toError(err)
		}
		if !ok {
			return nil, toError(fmt.Errorf("%w: %d", protocol.ErrUnknownChannel, in.Channel))
		}
		if cs.Final == nil {
			return nil, toError(fmt.Errorf("%w: channel %d has no final state", tinyevm.ErrIncompleteClose, in.Channel))
		}
		r, err := sn.Commit(ctx, cs.Final)
		if err != nil {
			return nil, toError(err)
		}
		return toReceipt(r), nil

	case "tinyevm_exit":
		var in struct {
			Node string `json:"node"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		sn, rpcErr := s.node(in.Node)
		if rpcErr != nil {
			return nil, rpcErr
		}
		r, err := sn.Exit(ctx)
		if err != nil {
			return nil, toError(err)
		}
		return toReceipt(r), nil

	case "tinyevm_settle":
		var in struct {
			Node string `json:"node"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		sn, rpcErr := s.node(in.Node)
		if rpcErr != nil {
			return nil, rpcErr
		}
		r, err := sn.Settle(ctx)
		if err != nil {
			return nil, toError(err)
		}
		return toReceipt(r), nil

	case "tinyevm_runChallengePeriod":
		if err := s.svc.RunChallengePeriod(ctx); err != nil {
			return nil, toError(err)
		}
		head, err := s.svc.HeadBlock(ctx)
		if err != nil {
			return nil, toError(err)
		}
		return map[string]uint64{"head": head}, nil

	case "tinyevm_balance":
		var in struct {
			Address string `json:"address"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		a, rpcErr := s.addr(in.Address)
		if rpcErr != nil {
			return nil, rpcErr
		}
		bal, err := s.svc.BalanceOf(ctx, a)
		if err != nil {
			return nil, toError(err)
		}
		return map[string]uint64{"balance": bal}, nil

	case "tinyevm_head":
		head, err := s.svc.HeadBlock(ctx)
		if err != nil {
			return nil, toError(err)
		}
		return map[string]uint64{"head": head}, nil

	case "tinyevm_nodeStatus", "tinyevm_node_status":
		st, err := s.svc.NodeStatus(ctx)
		if err != nil {
			return nil, toError(err)
		}
		return toNodeStatus(st), nil

	case "tinyevm_serviceStats":
		st, err := s.svc.ServiceStats(ctx)
		if err != nil {
			return nil, toError(err)
		}
		return toServiceStats(st), nil

	case "tinyevm_storeStatus":
		st, ok, err := s.svc.StoreStatus(ctx)
		if err != nil {
			return nil, toError(err)
		}
		if !ok {
			return nil, &Error{Code: codeServer, Message: "no durable store configured"}
		}
		return toStoreStatus(st), nil

	case "tinyevm_stateProof":
		var in struct {
			Address string `json:"address"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		a, rpcErr := s.addr(in.Address)
		if rpcErr != nil {
			return nil, rpcErr
		}
		p, err := s.svc.StateProof(ctx, a)
		if err != nil {
			return nil, toError(err)
		}
		return toStateProof(p), nil

	case "tinyevm_blockHash":
		var in struct {
			Number uint64 `json:"number"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		h, err := s.svc.BlockHash(ctx, in.Number)
		if err != nil {
			return nil, toError(err)
		}
		return map[string]string{"hash": h.Hex()}, nil

	case "tinyevm_subscribe":
		var in struct {
			Node string `json:"node"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		sn, rpcErr := s.node(in.Node)
		if rpcErr != nil {
			return nil, rpcErr
		}
		// The subscription outlives this HTTP request; it is bounded by
		// the service lifetime and explicit unsubscribe.
		subCtx, cancel := context.WithCancel(context.Background())
		events := sn.Subscribe(subCtx)
		s.mu.Lock()
		s.nextSub++
		id := fmt.Sprintf("sub-%d", s.nextSub)
		s.subs[id] = &serverSub{events: events, cancel: cancel, lastPoll: time.Now()}
		s.mu.Unlock()
		return map[string]string{"subscription": id}, nil

	case "tinyevm_poll":
		var in struct {
			Subscription string `json:"subscription"`
			Max          int    `json:"max"`
			TimeoutMs    int    `json:"timeoutMs"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		s.mu.Lock()
		sub, ok := s.subs[in.Subscription]
		if ok {
			sub.lastPoll = time.Now()
		}
		s.mu.Unlock()
		if !ok {
			return nil, &Error{Code: codeInvalidParams, Message: "unknown subscription " + in.Subscription}
		}
		events, closed := sub.poll(ctx, in.Max, in.TimeoutMs)
		if closed {
			// The stream ended (service closed or ctx cancelled): reap.
			s.mu.Lock()
			if cur, ok := s.subs[in.Subscription]; ok && cur == sub {
				cur.cancel()
				delete(s.subs, in.Subscription)
			}
			s.mu.Unlock()
		} else {
			s.mu.Lock()
			if cur, ok := s.subs[in.Subscription]; ok && cur == sub {
				cur.lastPoll = time.Now()
			}
			s.mu.Unlock()
		}
		return map[string]any{"events": events, "closed": closed}, nil

	case "tinyevm_unsubscribe":
		var in struct {
			Subscription string `json:"subscription"`
		}
		if e := decode(params, &in); e != nil {
			return nil, e
		}
		s.mu.Lock()
		sub, ok := s.subs[in.Subscription]
		delete(s.subs, in.Subscription)
		s.mu.Unlock()
		if ok {
			sub.cancel()
		}
		return map[string]bool{"ok": ok}, nil

	default:
		return nil, &Error{Code: codeMethodNotFound, Message: "method not found: " + method}
	}
}

// poll long-polls the subscription: it blocks until at least one event
// is available (or the timeout / request context expires), then drains
// up to max buffered events. closed reports that the stream ended.
func (sub *serverSub) poll(ctx context.Context, max, timeoutMs int) ([]Event, bool) {
	sub.pollMu.Lock()
	defer sub.pollMu.Unlock()

	if max <= 0 {
		max = 100
	}
	timeout := time.Duration(timeoutMs) * time.Millisecond
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	if timeout > maxPollTimeout {
		timeout = maxPollTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()

	events := make([]Event, 0, 4)
	select {
	case e, ok := <-sub.events:
		if !ok {
			return events, true
		}
		events = append(events, toEvent(e))
	case <-timer.C:
		return events, false
	case <-ctx.Done():
		return events, false
	}
	for len(events) < max {
		select {
		case e, ok := <-sub.events:
			if !ok {
				return events, true
			}
			events = append(events, toEvent(e))
		default:
			return events, false
		}
	}
	return events, false
}

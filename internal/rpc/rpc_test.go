package rpc

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tinyevm"
	"tinyevm/internal/protocol"
)

func newTestGateway(t *testing.T, opts ...tinyevm.Option) (*tinyevm.Service, *Client) {
	t.Helper()
	svc, provider, err := tinyevm.NewService("provider", opts...)
	if err != nil {
		t.Fatal(err)
	}
	provider.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) { return 2150, nil })
	srv := NewServer(svc)
	hts := httptest.NewServer(srv)
	t.Cleanup(func() {
		svc.Close()
		hts.Close()
	})
	return svc, NewClient(hts.URL, hts.Client())
}

// TestRPCEndToEndConcurrentClients is the gateway acceptance test: at
// least 100 concurrent HTTP clients each drive a full channel
// lifecycle — open, pay xN, close, query — against one tinyevm-serve
// style gateway, with zero lockstep calls, while a subscriber long-polls
// the provider's event stream. Run under -race in CI.
func TestRPCEndToEndConcurrentClients(t *testing.T) {
	_, client := newTestGateway(t)
	ctx := context.Background()

	const clients = 100
	const pays = 3
	const amount = 125

	provider, err := client.Provider(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Subscriber: long-poll the provider's stream, counting payments.
	subID, err := client.Subscribe(ctx, provider.Name)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(chan map[string]int, 1)
	subCtx, stopSub := context.WithTimeout(ctx, 60*time.Second)
	defer stopSub()
	go func() {
		seen := make(map[string]int)
		defer func() { counts <- seen }()
		for {
			events, closed, err := client.Poll(subCtx, subID, 500, 1000)
			if err != nil || closed {
				return
			}
			for _, e := range events {
				seen[e.Type]++
				if e.Type == "payment-received" && e.Amount != amount {
					t.Errorf("payment event amount %d, want %d", e.Amount, amount)
				}
			}
			if seen["payment-received"] >= clients*pays && seen["channel-closed"] >= clients {
				return
			}
			if subCtx.Err() != nil {
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("device-%03d", i)
			if _, err := client.AddNode(ctx, name); err != nil {
				errCh <- fmt.Errorf("%s add: %w", name, err)
				return
			}
			ch, err := client.OpenChannel(ctx, name, provider.Name, 10_000, 0)
			if err != nil {
				errCh <- fmt.Errorf("%s open: %w", name, err)
				return
			}
			for p := 0; p < pays; p++ {
				if _, err := client.Pay(ctx, name, ch.ID, amount); err != nil {
					errCh <- fmt.Errorf("%s pay %d: %w", name, p, err)
					return
				}
			}
			fs, err := client.CloseChannel(ctx, name, ch.ID)
			if err != nil {
				errCh <- fmt.Errorf("%s close: %w", name, err)
				return
			}
			if fs.Cumulative != pays*amount || !fs.Signed {
				errCh <- fmt.Errorf("%s final state: %+v", name, fs)
				return
			}
			// Query back the closed channel.
			got, err := client.Channel(ctx, name, ch.ID)
			if err != nil {
				errCh <- fmt.Errorf("%s query: %w", name, err)
				return
			}
			if !got.Closed || got.Cumulative != pays*amount {
				errCh <- fmt.Errorf("%s channel state: %+v", name, got)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	seen := <-counts
	if seen["payment-received"] != clients*pays {
		t.Errorf("subscriber saw %d payment events, want %d", seen["payment-received"], clients*pays)
	}
	if seen["channel-opened"] != clients {
		t.Errorf("subscriber saw %d channel-opened events, want %d", seen["channel-opened"], clients)
	}
	if seen["channel-closed"] != clients {
		t.Errorf("subscriber saw %d channel-closed events, want %d", seen["channel-closed"], clients)
	}

	// The provider's table holds one closed channel per client.
	chans, err := client.Channels(ctx, provider.Name)
	if err != nil {
		t.Fatal(err)
	}
	closed := 0
	for _, cs := range chans {
		if cs.Closed {
			closed++
		}
	}
	if closed != clients {
		t.Fatalf("provider sees %d closed channels, want %d", closed, clients)
	}
}

// TestRPCTypedErrorsCrossTheWire asserts the error taxonomy survives
// JSON encoding: client-side errors.Is matches the protocol sentinels.
func TestRPCTypedErrorsCrossTheWire(t *testing.T) {
	_, client := newTestGateway(t)
	ctx := context.Background()

	if _, err := client.AddNode(ctx, "dev"); err != nil {
		t.Fatal(err)
	}
	ch, err := client.OpenChannel(ctx, "dev", "provider", 1_000, 0)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := client.Pay(ctx, "dev", ch.ID, 5_000); !errors.Is(err, protocol.ErrInsufficientChannelBalance) {
		t.Fatalf("overspend over the wire: got %v", err)
	}
	if _, err := client.Pay(ctx, "dev", 424242, 1); !errors.Is(err, protocol.ErrUnknownChannel) {
		t.Fatalf("unknown channel over the wire: got %v", err)
	}
	if _, err := client.CloseChannel(ctx, "dev", ch.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Pay(ctx, "dev", ch.ID, 1); !errors.Is(err, protocol.ErrChannelClosed) {
		t.Fatalf("closed channel over the wire: got %v", err)
	}
	if _, err := client.Pay(ctx, "nobody", 1, 1); !errors.Is(err, tinyevm.ErrUnknownNode) {
		t.Fatalf("unknown node over the wire: got %v", err)
	}
}

// TestRPCOnChainLifecycle drives phase 1 and phase 3 over the gateway:
// deposit, commit, exit, challenge period, settle.
func TestRPCOnChainLifecycle(t *testing.T) {
	_, client := newTestGateway(t, tinyevm.WithChallengePeriod(3))
	ctx := context.Background()

	if _, err := client.AddNode(ctx, "car"); err != nil {
		t.Fatal(err)
	}
	if r, err := client.Deposit(ctx, "car", 10_000); err != nil || !r.Status {
		t.Fatalf("deposit: %v %+v", err, r)
	}
	ch, err := client.OpenChannel(ctx, "car", "provider", 10_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Pay(ctx, "car", ch.ID, 2_500); err != nil {
		t.Fatal(err)
	}
	if _, err := client.CloseChannel(ctx, "car", ch.ID); err != nil {
		t.Fatal(err)
	}

	// The provider commits its own view of the channel: find its local
	// handle for the car's channel.
	chans, err := client.Channels(ctx, "provider")
	if err != nil {
		t.Fatal(err)
	}
	var provHandle uint64
	for _, cs := range chans {
		if cs.Closed {
			provHandle = cs.ID
		}
	}
	if r, err := client.Commit(ctx, "provider", provHandle); err != nil || !r.Status {
		t.Fatalf("commit: %v %+v", err, r)
	}
	if r, err := client.Exit(ctx, "car"); err != nil || !r.Status {
		t.Fatalf("exit: %v %+v", err, r)
	}
	if err := client.RunChallengePeriod(ctx); err != nil {
		t.Fatal(err)
	}
	before, err := client.Balance(ctx, "car")
	if err != nil {
		t.Fatal(err)
	}
	if r, err := client.Settle(ctx, "provider"); err != nil || !r.Status {
		t.Fatalf("settle: %v %+v", err, r)
	}
	after, err := client.Balance(ctx, "car")
	if err != nil {
		t.Fatal(err)
	}
	// Settlement refunds the car's unspent deposit (10_000 - 2_500); the
	// car pays no gas in this window.
	if after-before != 7_500 {
		t.Fatalf("car refund = %d, want 7500", after-before)
	}
}

// TestRPCBadRequests exercises the JSON-RPC error codes.
func TestRPCBadRequests(t *testing.T) {
	_, client := newTestGateway(t)
	ctx := context.Background()

	var rpcErr *Error
	err := client.Call(ctx, "tinyevm_noSuchMethod", nil, nil)
	if !errors.As(err, &rpcErr) || rpcErr.Code != codeMethodNotFound {
		t.Fatalf("unknown method: got %v", err)
	}
	err = client.Call(ctx, "tinyevm_pay", map[string]any{"bogus": true}, nil)
	if !errors.As(err, &rpcErr) || rpcErr.Code != codeInvalidParams {
		t.Fatalf("bad params: got %v", err)
	}
	err = client.Call(ctx, "tinyevm_poll", map[string]any{"subscription": "sub-999"}, nil)
	if !errors.As(err, &rpcErr) || rpcErr.Code != codeInvalidParams {
		t.Fatalf("unknown subscription: got %v", err)
	}
}

// TestRPCUnsubscribe closes the stream and reports closed on the next
// poll.
func TestRPCUnsubscribe(t *testing.T) {
	_, client := newTestGateway(t)
	ctx := context.Background()

	subID, err := client.Subscribe(ctx, "provider")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Unsubscribe(ctx, subID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Poll(ctx, subID, 10, 100); err == nil {
		t.Fatal("poll after unsubscribe should fail")
	}
}

// TestRPCNodeStatusAndBlockHash covers the cluster introspection
// endpoints on a standalone gateway: role "standalone", zero peers,
// and a stable block hash once a block is sealed.
func TestRPCNodeStatusAndBlockHash(t *testing.T) {
	svc, client := newTestGateway(t)
	ctx := context.Background()

	st, err := client.NodeStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "standalone" || st.Peers != 0 {
		t.Fatalf("standalone status = %+v", st)
	}
	if err := svc.MineBlock(ctx); err != nil {
		t.Fatal(err)
	}
	st, err = client.NodeStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Height != 1 || st.Head == "" {
		t.Fatalf("post-mine status = %+v", st)
	}
	h, err := client.BlockHash(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h != st.Head {
		t.Fatalf("blockHash(1) = %s, head = %s", h, st.Head)
	}
	if _, err := client.BlockHash(ctx, 99); err == nil {
		t.Fatal("blockHash(99) succeeded for unsealed height")
	}
}

// Package rpc is the network surface of the TinyEVM service: a minimal
// JSON-RPC 2.0 gateway over HTTP exposing the off-chain channel
// protocol — open / pay / close / query / subscribe (long-poll) — plus
// the phase-1/phase-3 on-chain operations, following the gateway
// pattern for IoT–contract interaction: constrained devices (or their
// digital twins) are driven by ordinary HTTP clients while the gateway
// owns the radio, the devices and the simulated main chain.
//
// The protocol's typed error taxonomy crosses the wire: errors carry a
// machine-readable "kind" in the JSON-RPC error data, and the Go Client
// maps kinds back onto the protocol sentinels so errors.Is works on
// both sides of the gateway.
package rpc

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"

	"tinyevm"
	"tinyevm/internal/protocol"
	"tinyevm/internal/radio"
)

// JSON-RPC 2.0 error codes.
const (
	codeParse          = -32700
	codeInvalidRequest = -32600
	codeMethodNotFound = -32601
	codeInvalidParams  = -32602
	codeServer         = -32000
)

// request is one JSON-RPC 2.0 call.
type request struct {
	Version string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params"`
}

// response is one JSON-RPC 2.0 reply.
type response struct {
	Version string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *Error          `json:"error,omitempty"`
}

// Error is the JSON-RPC error object. Data.Kind carries the typed
// protocol error, when one applies.
type Error struct {
	Code    int        `json:"code"`
	Message string     `json:"message"`
	Data    *ErrorData `json:"data,omitempty"`
}

// ErrorData is the structured part of an Error.
type ErrorData struct {
	// Kind is the kebab-case name of the matched protocol sentinel
	// ("stale-sequence", "channel-closed", ...), empty when no sentinel
	// matched.
	Kind string `json:"kind,omitempty"`
	// Channel is the failing channel handle when the error carried one.
	Channel uint64 `json:"channel,omitempty"`
	// Op is the protocol operation that failed, when known.
	Op string `json:"op,omitempty"`
}

// Error implements error.
func (e *Error) Error() string { return e.Message }

// errorKinds maps protocol sentinels to wire kinds, in match order.
var errorKinds = []struct {
	err  error
	kind string
}{
	{protocol.ErrStaleSequence, "stale-sequence"},
	{protocol.ErrInsufficientChannelBalance, "insufficient-channel-balance"},
	{protocol.ErrChannelClosed, "channel-closed"},
	{protocol.ErrSignature, "bad-signature"},
	{protocol.ErrDecreasingCumulative, "decreasing-cumulative"},
	{protocol.ErrUnknownChannel, "unknown-channel"},
	{protocol.ErrNoPendingHTLC, "no-pending-htlc"},
	{protocol.ErrWrongPreimage, "wrong-preimage"},
	{protocol.ErrHTLCOutstanding, "htlc-outstanding"},
	{protocol.ErrStaleState, "stale-state"},
	{protocol.ErrOverspend, "overspend"},
	{protocol.ErrChallengeOpen, "challenge-open"},
	{protocol.ErrChallengeClosed, "challenge-closed"},
	{protocol.ErrExitActive, "exit-active"},
	{protocol.ErrNoExit, "no-exit"},
	{protocol.ErrSettled, "settled"},
	{protocol.ErrBadMessage, "bad-message"},
	{protocol.ErrBadMsgType, "bad-message-type"},
	{protocol.ErrWrongTemplate, "wrong-template"},
	{protocol.ErrWrongReceiver, "wrong-receiver"},
	{protocol.ErrUnknownOp, "unknown-op"},
	{protocol.ErrNotParticipant, "not-participant"},
	{protocol.ErrRouteTooShort, "route-too-short"},
	{protocol.ErrRouteChannels, "route-channels"},
	{protocol.ErrLogCorrupt, "log-corrupt"},
	{radio.ErrLinkFailure, "link-failure"},
	{tinyevm.ErrUnknownNode, "unknown-node"},
	{tinyevm.ErrServiceClosed, "service-closed"},
	{tinyevm.ErrIncompleteClose, "incomplete-close"},
	// Listed after the protocol sentinels so the wire kind names the
	// concrete cause; local callers still branch on ErrDeliveryFailed.
	{tinyevm.ErrDeliveryFailed, "delivery-failed"},
	{tinyevm.ErrNotLeader, "not-leader"},
	{tinyevm.ErrClusterOp, "cluster-op"},
	{context.Canceled, "canceled"},
	{context.DeadlineExceeded, "deadline-exceeded"},
}

// KindOf returns the wire kind of err ("" when untyped). It is the
// error taxonomy shared by the gateway, the Go client and the load
// harness: protocol sentinels, service errors and context errors map
// to stable kebab-case kinds.
func KindOf(err error) string {
	for _, ek := range errorKinds {
		if errors.Is(err, ek.err) {
			return ek.kind
		}
	}
	return ""
}

// sentinelOf returns the protocol sentinel for a wire kind (nil when
// unknown).
func sentinelOf(kind string) error {
	for _, ek := range errorKinds {
		if ek.kind == kind {
			return ek.err
		}
	}
	return nil
}

// toError converts a service error to the wire error object.
func toError(err error) *Error {
	e := &Error{Code: codeServer, Message: err.Error()}
	data := ErrorData{Kind: KindOf(err)}
	var cerr *protocol.ChannelError
	if errors.As(err, &cerr) {
		data.Channel = cerr.Channel
		data.Op = cerr.Op
	}
	if data != (ErrorData{}) {
		e.Data = &data
	}
	return e
}

// --- wire representations ---------------------------------------------

// Channel is the wire form of a channel-state snapshot.
type Channel struct {
	ID          uint64 `json:"id"`
	WireID      uint64 `json:"wireId"`
	Template    string `json:"template"`
	Addr        string `json:"addr"`
	Peer        string `json:"peer"`
	Opener      string `json:"opener"`
	Role        string `json:"role"`
	Deposit     uint64 `json:"deposit"`
	Seq         uint64 `json:"seq"`
	Cumulative  uint64 `json:"cumulative"`
	SensorValue uint64 `json:"sensorValue"`
	Closed      bool   `json:"closed"`
}

func toChannel(cs tinyevm.ChannelState) Channel {
	role := "sender"
	if cs.Role == protocol.RoleReceiver {
		role = "receiver"
	}
	return Channel{
		ID:          cs.ID,
		WireID:      cs.WireID,
		Template:    cs.Template.Hex(),
		Addr:        cs.Addr.Hex(),
		Peer:        cs.Peer.Hex(),
		Opener:      cs.Opener.Hex(),
		Role:        role,
		Deposit:     cs.Deposit,
		Seq:         cs.Seq,
		Cumulative:  cs.Cumulative,
		SensorValue: cs.SensorValue,
		Closed:      cs.Closed(),
	}
}

// Payment is the wire form of one off-chain payment.
type Payment struct {
	Channel    uint64 `json:"channel"`
	Seq        uint64 `json:"seq"`
	Cumulative uint64 `json:"cumulative"`
	HashLock   string `json:"hashLock,omitempty"`
}

// FinalState is the wire form of a doubly-signed close.
type FinalState struct {
	Channel    uint64 `json:"channel"`
	Sender     string `json:"sender"`
	Receiver   string `json:"receiver"`
	Seq        uint64 `json:"seq"`
	Cumulative uint64 `json:"cumulative"`
	Signed     bool   `json:"signed"`
}

// Receipt is the wire form of an on-chain transaction receipt.
type Receipt struct {
	Status  bool   `json:"status"`
	GasUsed uint64 `json:"gasUsed"`
	Block   uint64 `json:"block"`
	Error   string `json:"error,omitempty"`
}

// NodeStatus is the wire form of a daemon's cluster view. A standalone
// gateway reports role "standalone" with zero peers. The shard and
// pipeline fields are additive — the pre-shard response shape is a
// strict subset, so existing clients keep decoding.
type NodeStatus struct {
	Height    uint64 `json:"height"`
	Head      string `json:"head"`
	Peers     int    `json:"peers"`
	Role      string `json:"role"`
	Validator string `json:"validator,omitempty"`
	Leader    string `json:"leader,omitempty"`
	Pool      int    `json:"pool,omitempty"`

	// Shards is the service's lock-stripe count; PendingOps counts the
	// pairwise ops queued on or holding each stripe; PipelineDepth is
	// the number of sealed blocks whose WAL commit is still in flight.
	Shards        int   `json:"shards,omitempty"`
	PendingOps    []int `json:"pendingOps,omitempty"`
	PipelineDepth int   `json:"pipelineDepth,omitempty"`

	// Store/checkpoint vitals (additive; absent without a durable
	// store): backend kind, disk-segment and compaction counts, latest
	// checkpoint height. StateRoot is the MST state root hash when the
	// daemon runs the MST commitment.
	StoreKind        string `json:"storeKind,omitempty"`
	Segments         int    `json:"segments,omitempty"`
	Compactions      uint64 `json:"compactions,omitempty"`
	CheckpointHeight uint64 `json:"checkpointHeight,omitempty"`
	StateRoot        string `json:"stateRoot,omitempty"`
}

func toNodeStatus(st tinyevm.NodeStatus) NodeStatus {
	out := NodeStatus{
		Height:           st.Height,
		Head:             st.Head.Hex(),
		Peers:            st.Peers,
		Role:             st.Role,
		Pool:             st.Pool,
		Shards:           st.Shards,
		PendingOps:       st.PendingOps,
		PipelineDepth:    st.PipelineDepth,
		StoreKind:        st.StoreKind,
		Segments:         st.Segments,
		Compactions:      st.Compactions,
		CheckpointHeight: st.CheckpointHeight,
	}
	if !st.Validator.IsZero() {
		out.Validator = st.Validator.Hex()
	}
	if !st.Leader.IsZero() {
		out.Leader = st.Leader.Hex()
	}
	if !st.StateRoot.IsZero() {
		out.StateRoot = st.StateRoot.Hex()
	}
	return out
}

// StoreStatus is the wire form of the durable store's status
// (tinyevm_storeStatus).
type StoreStatus struct {
	// Kind names the backend: "mem", "wal", "disk" or "custom".
	Kind string `json:"kind"`
	// Segments / SegmentBytes / MemtableBytes / Flushes / Compactions
	// mirror the backend's store.Stats.
	Segments      int    `json:"segments"`
	SegmentBytes  int64  `json:"segmentBytes"`
	MemtableBytes int64  `json:"memtableBytes"`
	Flushes       uint64 `json:"flushes"`
	Compactions   uint64 `json:"compactions"`
	// CheckpointInterval is the configured checkpoint cadence in blocks
	// (0: disabled); CheckpointHeight/CheckpointSeq locate the latest
	// written checkpoint.
	CheckpointInterval uint64 `json:"checkpointInterval"`
	CheckpointHeight   uint64 `json:"checkpointHeight"`
	CheckpointSeq      uint64 `json:"checkpointSeq"`
}

func toStoreStatus(st tinyevm.StoreStatus) StoreStatus {
	return StoreStatus{
		Kind:               st.Kind,
		Segments:           st.Segments,
		SegmentBytes:       st.SegmentBytes,
		MemtableBytes:      st.MemtableBytes,
		Flushes:            st.Flushes,
		Compactions:        st.Compactions,
		CheckpointInterval: st.CheckpointInterval,
		CheckpointHeight:   st.CheckpointHeight,
		CheckpointSeq:      st.CheckpointSeq,
	}
}

// StateProofStep is one ancestor on a state-proof path.
type StateProofStep struct {
	Key         string `json:"key"` // hex (an account address)
	ValueHash   string `json:"valueHash"`
	Sum         uint64 `json:"sum"`
	SiblingHash string `json:"siblingHash"`
	SiblingSum  uint64 `json:"siblingSum"`
	Right       bool   `json:"right"`
}

// StateProof is the wire form of a light-client account proof
// (tinyevm_stateProof). Verify with Client.VerifyStateProof; trust in
// Commitment comes from comparing it against a block record obtained
// independently.
type StateProof struct {
	Address       string `json:"address"`
	AccountDigest string `json:"accountDigest"`
	Sum           uint64 `json:"sum"`
	// Account is the hex-encoded persisted account record (the digest
	// preimage the verifier re-hashes).
	Account string `json:"account"`
	// The proven node's child digests plus the bottom-up ancestor path.
	LeftHash  string           `json:"leftHash"`
	LeftSum   uint64           `json:"leftSum"`
	RightHash string           `json:"rightHash"`
	RightSum  uint64           `json:"rightSum"`
	Steps     []StateProofStep `json:"steps,omitempty"`
	// RootHash/RootSum are the MST root; Commitment is the folded
	// digest persisted in block records; Head is the proof's height.
	RootHash   string `json:"rootHash"`
	RootSum    uint64 `json:"rootSum"`
	Commitment string `json:"commitment"`
	Head       uint64 `json:"head"`
}

func toStateProof(p *tinyevm.AccountProof) StateProof {
	out := StateProof{
		Address:       p.Address.Hex(),
		AccountDigest: p.AccountDigest.Hex(),
		Sum:           p.Sum,
		Account:       hex.EncodeToString(p.Account),
		LeftHash:      p.Proof.LeftHash.Hex(),
		LeftSum:       p.Proof.LeftSum,
		RightHash:     p.Proof.RightHash.Hex(),
		RightSum:      p.Proof.RightSum,
		RootHash:      p.Root.Hash.Hex(),
		RootSum:       p.Root.Sum,
		Commitment:    p.Commitment.Hex(),
		Head:          p.Head,
	}
	for _, st := range p.Proof.Steps {
		out.Steps = append(out.Steps, StateProofStep{
			Key:         hex.EncodeToString(st.Key),
			ValueHash:   st.ValueHash.Hex(),
			Sum:         st.Sum,
			SiblingHash: st.SiblingHash.Hex(),
			SiblingSum:  st.SiblingSum,
			Right:       st.Right,
		})
	}
	return out
}

// ServiceStats is the wire form of the sharded hot path's statistics
// (tinyevm_serviceStats).
type ServiceStats struct {
	Shards        int   `json:"shards"`
	ShardPending  []int `json:"shardPending"`
	PipelineDepth int   `json:"pipelineDepth"`
	// Ops is the next journal sequence number (0 without a store).
	Ops uint64 `json:"ops"`
	// Nodes is the registered node count.
	Nodes int `json:"nodes"`
}

func toServiceStats(st tinyevm.ServiceStats) ServiceStats {
	return ServiceStats{
		Shards:        st.Shards,
		ShardPending:  st.ShardPending,
		PipelineDepth: st.PipelineDepth,
		Ops:           st.Ops,
		Nodes:         st.Nodes,
	}
}

// Event is the wire form of a service event.
type Event struct {
	Type    string `json:"type"`
	Node    string `json:"node,omitempty"`
	Channel uint64 `json:"channel,omitempty"`
	Peer    string `json:"peer,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	Amount  uint64 `json:"amount,omitempty"`
	Block   uint64 `json:"block,omitempty"`
	Error   string `json:"error,omitempty"`
	// ErrorKind is the typed kind of Error, when one matched.
	ErrorKind string `json:"errorKind,omitempty"`
	// TimeUnixMs is the service clock timestamp.
	TimeUnixMs int64 `json:"timeUnixMs"`
}

func toEvent(e tinyevm.Event) Event {
	out := Event{
		Type:       e.Type.String(),
		Node:       e.Node,
		Channel:    e.Channel,
		Seq:        e.Seq,
		Amount:     e.Amount,
		Block:      e.Block,
		TimeUnixMs: e.Time.UnixMilli(),
	}
	if !e.Peer.IsZero() {
		out.Peer = e.Peer.Hex()
	}
	if e.Err != nil {
		out.Error = e.Err.Error()
		out.ErrorKind = KindOf(e.Err)
	}
	return out
}

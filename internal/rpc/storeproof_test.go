package rpc

import (
	"context"
	"testing"

	"tinyevm"
	"tinyevm/internal/store"
)

// TestStoreStatusRPC round-trips tinyevm_storeStatus: backend kind and
// checkpoint position over the wire, and a clean server error when the
// service runs without a store.
func TestStoreStatusRPC(t *testing.T) {
	kv := store.NewMem()
	svc, client := newTestGateway(t,
		tinyevm.WithStore(kv), tinyevm.WithCheckpointInterval(1))
	ctx := context.Background()

	if _, err := client.AddNode(ctx, "car"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Deposit(ctx, "car", 5_000); err != nil { // seals a block
		t.Fatal(err)
	}
	st, err := client.StoreStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != "mem" || st.CheckpointInterval != 1 {
		t.Fatalf("store status over RPC: %+v", st)
	}
	if st.CheckpointHeight == 0 || st.CheckpointSeq == 0 {
		t.Fatalf("no checkpoint visible over RPC: %+v", st)
	}
	local, ok, err := svc.StoreStatus(ctx)
	if err != nil || !ok {
		t.Fatalf("local store status: %v %v", ok, err)
	}
	if st.CheckpointHeight != local.CheckpointHeight || st.CheckpointSeq != local.CheckpointSeq {
		t.Fatalf("RPC/local checkpoint position diverged: %+v vs %+v", st, local)
	}

	// Storeless service: the method must fail loudly, not fabricate.
	_, storeless := newTestGateway(t)
	if _, err := storeless.StoreStatus(ctx); err == nil {
		t.Fatal("storeStatus succeeded without a store")
	}
}

// TestStateProofRPC is the light-client end-to-end: request a proof
// over the wire by node name and by hex address, verify it entirely
// client-side (Merkle path, commitment fold, account re-digest), and
// reject a tampered wire proof.
func TestStateProofRPC(t *testing.T) {
	_, client := newTestGateway(t, tinyevm.WithMSTCommitment(true))
	ctx := context.Background()

	car, err := client.AddNode(ctx, "car")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := client.OpenChannel(ctx, "car", "provider", 20_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Pay(ctx, "car", ch.ID, 300); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Deposit(ctx, "car", 7_500); err != nil {
		t.Fatal(err)
	}

	for _, target := range []string{"car", car.Address} {
		p, err := client.StateProof(ctx, target)
		if err != nil {
			t.Fatalf("stateProof(%s): %v", target, err)
		}
		if err := VerifyStateProof(&p); err != nil {
			t.Fatalf("proof for %s does not verify client-side: %v", target, err)
		}
		if p.Head == 0 {
			t.Fatalf("proof carries no head height: %+v", p)
		}
		// Tamper with the claimed account contents: the preimage check
		// must catch a server lying about balances.
		bad := p
		bad.Account = "00" + bad.Account[2:]
		if VerifyStateProof(&bad) == nil {
			t.Fatal("tampered account record verified")
		}
		bad = p
		bad.Sum++
		if VerifyStateProof(&bad) == nil {
			t.Fatal("tampered sum verified")
		}
	}

	// Digest-mode gateway: the method fails with a server error.
	_, legacy := newTestGateway(t)
	if _, err := legacy.StateProof(ctx, "provider"); err == nil {
		t.Fatal("stateProof succeeded under the legacy digest commitment")
	}
}

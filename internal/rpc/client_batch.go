package rpc

// Batch client: many JSON-RPC calls in one HTTP round trip. The load
// harness uses it to amortize connection and HTTP overhead across
// payments — with the sharded service the gateway executes the batched
// entries concurrently, so one wire round trip carries the parallelism
// the server can extract from it.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Batch accumulates JSON-RPC calls and sends them as one JSON-RPC 2.0
// batch request. Build with Client.NewBatch, append with Add (or the
// typed helpers), send with Call. A Batch is single-use and not safe
// for concurrent mutation; the underlying Client is.
type Batch struct {
	c       *Client
	entries []batchEntry
	encErr  error
}

type batchEntry struct {
	id     uint64
	method string
	params json.RawMessage
	out    any
}

// NewBatch starts an empty batch on this client.
func (c *Client) NewBatch() *Batch { return &Batch{c: c} }

// Len returns the number of calls added so far.
func (b *Batch) Len() int { return len(b.entries) }

// Add appends one call; the response's result is decoded into out (nil
// discards it). Returns b for chaining. A params encoding failure is
// latched and surfaced by Call.
func (b *Batch) Add(method string, params, out any) *Batch {
	raw, err := json.Marshal(params)
	if err != nil && b.encErr == nil {
		b.encErr = fmt.Errorf("rpc: encoding params for %s (batch entry %d): %w", method, len(b.entries), err)
	}
	b.entries = append(b.entries, batchEntry{
		id:     b.c.nextID.Add(1),
		method: method,
		params: raw,
		out:    out,
	})
	return b
}

// Pay appends a tinyevm_pay call decoding into out (nil discards it).
func (b *Batch) Pay(node string, channel, amount uint64, out *Payment) *Batch {
	var dst any
	if out != nil {
		dst = out
	}
	return b.Add("tinyevm_pay",
		map[string]any{"node": node, "channel": channel, "amount": amount}, dst)
}

// Call sends the batch in one HTTP request and returns one error slot
// per added call, aligned with Add order (nil on success, a rebuilt
// typed sentinel or *Error otherwise). The second return value is a
// whole-batch failure — encoding, transport, or an unparseable reply —
// in which case no per-entry slice is returned. Transport failures
// retry per WithRetry with the same re-execution caveat as Call.
func (b *Batch) Call(ctx context.Context) ([]error, error) {
	if b.encErr != nil {
		return nil, b.encErr
	}
	if len(b.entries) == 0 {
		return nil, nil
	}
	reqs := make([]request, len(b.entries))
	for i, e := range b.entries {
		reqs[i] = request{
			Version: "2.0",
			ID:      json.RawMessage(fmt.Sprintf("%d", e.id)),
			Method:  e.method,
			Params:  e.params,
		}
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, fmt.Errorf("rpc: encoding batch: %w", err)
	}

	var (
		perEntry []error
		lastErr  error
	)
	for attempt := 0; ; attempt++ {
		perEntry, lastErr = b.send(ctx, body)
		if lastErr == nil || !retryable(lastErr) || attempt >= b.c.retries {
			return perEntry, lastErr
		}
		if b.c.backoff > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Duration(attempt+1) * b.c.backoff):
			}
		} else if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}

// send is one batch attempt.
func (b *Batch) send(ctx context.Context, body []byte) ([]error, error) {
	c := b.c
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(httpResp.Body, maxBody))
	if err != nil {
		return nil, err
	}

	// A single error object (e.g. oversized batch) answers the whole
	// request; a JSON array answers entry by entry.
	if !isBatch(respBody) {
		var resp response
		if err := json.Unmarshal(respBody, &resp); err != nil {
			return nil, fmt.Errorf("rpc: bad batch response (HTTP %d): %w", httpResp.StatusCode, err)
		}
		if resp.Error != nil {
			return nil, remoteError(resp.Error)
		}
		return nil, errors.New("rpc: gateway answered a batch with a single non-error response")
	}
	var resps []response
	if err := json.Unmarshal(respBody, &resps); err != nil {
		return nil, fmt.Errorf("rpc: bad batch response (HTTP %d): %w", httpResp.StatusCode, err)
	}

	// The gateway preserves request order, but match by id anyway —
	// the spec only guarantees ids, and it costs one map.
	byID := make(map[string]*response, len(resps))
	for i := range resps {
		byID[string(resps[i].ID)] = &resps[i]
	}
	out := make([]error, len(b.entries))
	for i, e := range b.entries {
		resp, ok := byID[fmt.Sprintf("%d", e.id)]
		if !ok {
			out[i] = fmt.Errorf("rpc: no response for batch entry %d (%s)", i, e.method)
			continue
		}
		if resp.Error != nil {
			out[i] = remoteError(resp.Error)
			continue
		}
		if e.out != nil {
			out[i] = json.Unmarshal(resp.Result, e.out)
		}
	}
	return out, nil
}

package rpc

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tinyevm"
	"tinyevm/internal/protocol"
)

// flakyHandler fails the first n requests at the transport level (by
// hijacking and closing the connection) and then answers normally.
type flakyHandler struct {
	fails int32
	inner http.Handler
	hits  atomic.Int32
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.hits.Add(1) <= f.fails {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server does not support hijacking")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			panic(err)
		}
		conn.Close() // connection reset mid-request
		return
	}
	f.inner.ServeHTTP(w, r)
}

func newFlakyGateway(t *testing.T, failFirst int32) (*flakyHandler, string) {
	t.Helper()
	svc, _, err := tinyevm.NewService("prov")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	h := &flakyHandler{fails: failFirst, inner: NewServer(svc)}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return h, srv.URL
}

func TestClientRetryRecoversTransportFailure(t *testing.T) {
	h, url := newFlakyGateway(t, 2)
	client := NewClient(url, nil, WithRetry(3, time.Millisecond))
	if _, err := client.Head(context.Background()); err != nil {
		t.Fatalf("Head with retries: %v", err)
	}
	if got := h.hits.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (2 failures + 1 success)", got)
	}
}

func TestClientNoRetryByDefault(t *testing.T) {
	h, url := newFlakyGateway(t, 1)
	client := NewClient(url, nil)
	if _, err := client.Head(context.Background()); err == nil {
		t.Fatal("expected transport error without retries")
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

func TestClientDoesNotRetryTypedErrors(t *testing.T) {
	h, url := newFlakyGateway(t, 0)
	client := NewClient(url, nil, WithRetry(5, time.Millisecond))
	// Paying on a channel that does not exist yields a typed protocol
	// error; it must come back after exactly one attempt.
	_, err := client.Pay(context.Background(), "prov", 999, 1)
	if err == nil {
		t.Fatal("expected unknown-channel error")
	}
	if !errors.Is(err, protocol.ErrUnknownChannel) && !errors.Is(err, tinyevm.ErrUnknownNode) {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := h.hits.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (typed errors are final)", got)
	}
}

// slowServer answers every request with an empty 200 after d. The
// bounded sleep (rather than blocking on the request context) keeps
// srv.Close from waiting on stuck handlers.
func slowServer(t *testing.T, d time.Duration) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(d)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestClientRequestTimeout(t *testing.T) {
	// A handler far slower than the timeout; the per-attempt deadline
	// must fire.
	srv := slowServer(t, time.Second)
	client := NewClient(srv.URL, nil, WithRequestTimeout(50*time.Millisecond))
	start := time.Now()
	_, err := client.Head(context.Background())
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout did not bound the attempt: %v", elapsed)
	}
}

func TestClientRetryRespectsContextCancel(t *testing.T) {
	srv := slowServer(t, time.Second)
	client := NewClient(srv.URL, nil,
		WithRequestTimeout(20*time.Millisecond), WithRetry(1000, 10*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Head(ctx)
	if err == nil {
		t.Fatal("expected error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ignored context cancellation: %v", elapsed)
	}
}

func TestKindOfTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		kind string
	}{
		{protocol.ErrStaleSequence, "stale-sequence"},
		{protocol.ErrUnknownChannel, "unknown-channel"},
		{tinyevm.ErrUnknownNode, "unknown-node"},
		{context.Canceled, "canceled"},
		{context.DeadlineExceeded, "deadline-exceeded"},
		{errors.New("anonymous"), ""},
	}
	for _, c := range cases {
		if got := KindOf(c.err); got != c.kind {
			t.Errorf("KindOf(%v) = %q, want %q", c.err, got, c.kind)
		}
	}
}

package consensus

import (
	"errors"
	"testing"

	"tinyevm/internal/types"
)

func vals(n int) []types.Address {
	out := make([]types.Address, n)
	for i := range out {
		out[i] = types.Address{byte(i + 1)}
	}
	return out
}

func TestRoundRobinSchedule(t *testing.T) {
	vs := vals(3)
	rr, err := NewRoundRobin(vs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for h := uint64(0); h < 9; h++ {
		want := vs[h%3]
		if got := rr.LeaderAt(h); got != want {
			t.Fatalf("LeaderAt(%d) = %s, want %s", h, got, want)
		}
		if err := rr.Propose(h, want, 0); err != nil {
			t.Fatalf("scheduled leader rejected at %d: %v", h, err)
		}
		if err := rr.Verify(h, want, 0); err != nil {
			t.Fatalf("scheduled coinbase rejected at %d: %v", h, err)
		}
	}
}

func TestRoundRobinStrictRejectsOthers(t *testing.T) {
	vs := vals(3)
	rr, _ := NewRoundRobin(vs, 0)
	if err := rr.Propose(1, vs[0], 0); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("off-schedule propose: %v", err)
	}
	// Even massively overdue, strict mode admits nobody else.
	if err := rr.Propose(1, vs[2], 10); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("strict fallback propose: %v", err)
	}
	if err := rr.Verify(1, vs[0], 0); !errors.Is(err, ErrBadProposer) {
		t.Fatalf("off-schedule verify: %v", err)
	}
	if err := rr.Verify(1, types.Address{0xff}, 5); !errors.Is(err, ErrBadProposer) {
		t.Fatalf("non-validator verify: %v", err)
	}
}

func TestRoundRobinFallback(t *testing.T) {
	vs := vals(3)
	rr, _ := NewRoundRobin(vs, 2)
	// Height 0: leader vs[0]; first fallback vs[1]; second vs[2].
	if err := rr.Propose(0, vs[1], 0); !errors.Is(err, ErrNotLeader) {
		t.Fatal("fallback admitted before round was overdue")
	}
	if err := rr.Propose(0, vs[1], 1); err != nil {
		t.Fatalf("first fallback rejected at overdue=1: %v", err)
	}
	if err := rr.Propose(0, vs[2], 1); !errors.Is(err, ErrNotLeader) {
		t.Fatal("second fallback admitted at overdue=1")
	}
	if err := rr.Verify(0, vs[2], 2); err != nil {
		t.Fatalf("second fallback verify rejected at overdue=2: %v", err)
	}
	// Non-validators stay out no matter what.
	if err := rr.Propose(0, types.Address{0xff}, 99); !errors.Is(err, ErrNotLeader) {
		t.Fatal("non-validator admitted via fallback")
	}
}

func TestRoundRobinConfig(t *testing.T) {
	if _, err := NewRoundRobin(nil, 0); !errors.Is(err, ErrNoValidators) {
		t.Fatalf("empty set: %v", err)
	}
	dup := []types.Address{{1}, {1}}
	if _, err := NewRoundRobin(dup, 0); err == nil {
		t.Fatal("duplicate validator accepted")
	}
	// maxFallback clamps to n-1.
	rr, err := NewRoundRobin(vals(2), 99)
	if err != nil {
		t.Fatal(err)
	}
	if rr.maxFallback != 1 {
		t.Fatalf("maxFallback = %d, want 1", rr.maxFallback)
	}
	// Validators returns a copy.
	got := rr.Validators()
	got[0] = types.Address{0xee}
	if rr.Validators()[0] == got[0] {
		t.Fatal("Validators leaked internal slice")
	}
}

// Package consensus defines who may seal the next block. The Engine
// interface is the cluster's policy seam: the round-robin engine below
// gives deterministic leader rotation for cooperating daemons, and a
// VRF- or BFT-style engine can replace it later without touching the
// p2p or cluster layers.
package consensus

import (
	"errors"
	"fmt"

	"tinyevm/internal/chain"
	"tinyevm/internal/types"
)

// Errors returned by engines.
var (
	// ErrNotLeader rejects a proposal from a node that is not the
	// scheduled leader for the height.
	ErrNotLeader = errors.New("consensus: not the leader for this height")
	// ErrBadProposer rejects a block sealed by a coinbase outside the
	// validator set or out of schedule.
	ErrBadProposer = errors.New("consensus: block proposer violates schedule")
	// ErrNoValidators marks an engine configured with an empty set.
	ErrNoValidators = errors.New("consensus: validator set is empty")
)

// Engine decides, per height, which validator seals and whether a
// sealed block respects the schedule.
type Engine interface {
	// Validators returns the static validator set, in schedule order.
	Validators() []types.Address
	// LeaderAt returns the scheduled leader for a height.
	LeaderAt(height uint64) types.Address
	// Propose checks whether proposer may seal the given height.
	// overdue counts how many schedule slots have elapsed without the
	// scheduled leader producing (0 = on time); engines use it to admit
	// fallback proposers for liveness.
	Propose(height uint64, proposer types.Address, overdue uint64) error
	// Verify checks a sealed block's coinbase against the schedule,
	// with the same overdue allowance as Propose.
	Verify(height uint64, coinbase types.Address, overdue uint64) error
	// Finalize observes a block accepted onto the chain (hook for
	// engines that track rounds or stake; round-robin needs nothing).
	Finalize(b *chain.Block)
}

// RoundRobin rotates leadership deterministically: the leader for
// height h is validators[h % len(validators)]. With MaxFallback > 0,
// when a round is overdue the next validators in schedule order may
// step in (leader for slot h+k serves as fallback k), trading the
// single-sealer guarantee for liveness when a leader dies.
type RoundRobin struct {
	validators []types.Address
	index      map[types.Address]int
	// maxFallback bounds how many schedule slots past the scheduled
	// leader may propose an overdue height. 0 = strict single leader.
	maxFallback uint64
}

// NewRoundRobin builds the engine. The validator order defines the
// schedule and must be identical on every node.
func NewRoundRobin(validators []types.Address, maxFallback uint64) (*RoundRobin, error) {
	if len(validators) == 0 {
		return nil, ErrNoValidators
	}
	if maxFallback >= uint64(len(validators)) {
		maxFallback = uint64(len(validators) - 1)
	}
	idx := make(map[types.Address]int, len(validators))
	for i, v := range validators {
		if _, dup := idx[v]; dup {
			return nil, fmt.Errorf("consensus: duplicate validator %s", v)
		}
		idx[v] = i
	}
	return &RoundRobin{
		validators:  append([]types.Address(nil), validators...),
		index:       idx,
		maxFallback: maxFallback,
	}, nil
}

// Validators implements Engine.
func (rr *RoundRobin) Validators() []types.Address {
	return append([]types.Address(nil), rr.validators...)
}

// LeaderAt implements Engine.
func (rr *RoundRobin) LeaderAt(height uint64) types.Address {
	return rr.validators[height%uint64(len(rr.validators))]
}

// allowed reports whether addr may seal height given how overdue the
// round is: the scheduled leader always may; fallback k (the leader of
// slot height+k) may once overdue >= k, up to maxFallback.
func (rr *RoundRobin) allowed(height uint64, addr types.Address, overdue uint64) bool {
	i, ok := rr.index[addr]
	if !ok {
		return false
	}
	lead := int(height % uint64(len(rr.validators)))
	k := uint64((i - lead + len(rr.validators)) % len(rr.validators))
	if k == 0 {
		return true
	}
	return k <= rr.maxFallback && overdue >= k
}

// Propose implements Engine.
func (rr *RoundRobin) Propose(height uint64, proposer types.Address, overdue uint64) error {
	if !rr.allowed(height, proposer, overdue) {
		return fmt.Errorf("%w: height %d is %s's slot", ErrNotLeader, height, rr.LeaderAt(height))
	}
	return nil
}

// Verify implements Engine.
func (rr *RoundRobin) Verify(height uint64, coinbase types.Address, overdue uint64) error {
	if !rr.allowed(height, coinbase, overdue) {
		return fmt.Errorf("%w: height %d sealed by %s, scheduled %s",
			ErrBadProposer, height, coinbase, rr.LeaderAt(height))
	}
	return nil
}

// Finalize implements Engine. Round-robin keeps no per-round state.
func (rr *RoundRobin) Finalize(b *chain.Block) {}

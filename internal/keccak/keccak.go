// Package keccak implements the Keccak-256 hash function as used by
// Ethereum: the original Keccak submission with multi-rate padding
// (domain byte 0x01), not the final FIPS-202 SHA3-256 (0x06).
//
// TinyEVM (the paper, §VI-C2) runs Keccak-256 in software on the MCU
// because the CC2538 crypto engine does not support it; this package is
// that software implementation, used both for EVM KECCAK256/SHA3 opcodes
// and for Ethereum address/state hashing throughout the repository.
package keccak

import (
	"encoding/binary"
	"hash"
	"math/bits"
)

const (
	// rate256 is the sponge rate in bytes for 256-bit output
	// (1600 - 2*256 bits = 1088 bits = 136 bytes).
	rate256 = 136
	// Size is the output size of Keccak-256 in bytes.
	Size = 32
)

// roundConstants are the 24 iota-step constants of keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808A, 0x8000000080008000,
	0x000000000000808B, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008A, 0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
	0x000000008000808B, 0x800000000000008B, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800A, 0x800000008000000A,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotationOffsets holds the rho-step rotation amounts indexed [x][y].
var rotationOffsets = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// keccakF1600 applies the full 24-round keccak-f[1600] permutation to the
// state, indexed as a[x+5y].
func keccakF1600(a *[25]uint64) {
	var b [25]uint64
	var c, d [5]uint64
	for round := 0; round < 24; round++ {
		// Theta.
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ bits.RotateLeft64(c[(x+1)%5], 1)
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d[x]
			}
		}
		// Rho and Pi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				nx, ny := y, (2*x+3*y)%5
				b[nx+5*ny] = bits.RotateLeft64(a[x+5*y], int(rotationOffsets[x][y]))
			}
		}
		// Chi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
			}
		}
		// Iota.
		a[0] ^= roundConstants[round]
	}
}

// Hasher is a streaming Keccak-256 hasher implementing hash.Hash. The
// zero value is ready to use — Sum256/Sum256Concat rely on that to keep
// the sponge on the caller's stack — and New exists only for the
// pointer-receiver hash.Hash idiom.
type Hasher struct {
	state  [25]uint64
	buf    [rate256]byte
	bufLen int
}

var _ hash.Hash = (*Hasher)(nil)

// New returns a new Keccak-256 hasher.
func New() *Hasher {
	return &Hasher{}
}

// Write absorbs more data into the sponge. It never returns an error.
func (h *Hasher) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		space := rate256 - h.bufLen
		if space > len(p) {
			space = len(p)
		}
		copy(h.buf[h.bufLen:], p[:space])
		h.bufLen += space
		p = p[space:]
		if h.bufLen == rate256 {
			h.absorbBlock()
		}
	}
	return n, nil
}

func (h *Hasher) absorbBlock() {
	for i := 0; i < rate256/8; i++ {
		h.state[i] ^= binary.LittleEndian.Uint64(h.buf[i*8:])
	}
	keccakF1600(&h.state)
	h.bufLen = 0
}

// Sum appends the current hash to b and returns the resulting slice. It
// does not change the underlying hash state.
func (h *Hasher) Sum(b []byte) []byte {
	out := h.sumFixed()
	return append(b, out[:]...)
}

// sumFixed finalizes a copy of the sponge into a fixed-size output
// without heap allocation — the interpreter's KECCAK256 hot path.
func (h *Hasher) sumFixed() [Size]byte {
	// Copy the state so Sum can be called repeatedly / interleaved with
	// further writes.
	dup := *h
	// Multi-rate padding with the legacy Keccak domain byte 0x01.
	dup.buf[dup.bufLen] = 0x01
	for i := dup.bufLen + 1; i < rate256; i++ {
		dup.buf[i] = 0
	}
	dup.buf[rate256-1] |= 0x80
	dup.bufLen = rate256
	dup.absorbBlock()

	var out [Size]byte
	for i := 0; i < Size/8; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], dup.state[i])
	}
	return out
}

// Reset resets the hasher to its initial state.
func (h *Hasher) Reset() {
	h.state = [25]uint64{}
	h.bufLen = 0
}

// Size returns the number of bytes Sum will produce (32).
func (h *Hasher) Size() int { return Size }

// BlockSize returns the sponge rate in bytes (136).
func (h *Hasher) BlockSize() int { return rate256 }

// Sum256 returns the Keccak-256 digest of data. It allocates nothing:
// the sponge lives on the caller's stack and the digest is returned by
// value.
func Sum256(data []byte) [Size]byte {
	var h Hasher
	h.Write(data) //nolint:errcheck // Write never fails
	return h.sumFixed()
}

// Sum256Concat returns the Keccak-256 digest of the concatenation of the
// given byte slices without building an intermediate buffer.
func Sum256Concat(parts ...[]byte) [Size]byte {
	var h Hasher
	for _, p := range parts {
		h.Write(p) //nolint:errcheck // Write never fails
	}
	return h.sumFixed()
}

package keccak

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"strings"
	"testing"
)

// Known-answer tests for legacy Keccak-256 (Ethereum variant).
func TestKnownVectors(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		// The empty-input digest is Ethereum's well-known empty-code-hash
		// constant.
		{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
		{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
		{"hello", "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"},
		{
			"The quick brown fox jumps over the lazy dog",
			"4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15",
		},
		// 135 bytes puts the 0x01 pad and the 0x80 pad in the same final
		// block position; regression-pinned against this implementation
		// after the cross-library vectors above validated it.
		{
			strings.Repeat("a", 135),
			"34367dc248bbd832f4e3e69dfaac2f92638bd0bbd18f2912ba4ef454919cf446",
		},
	}
	for _, tc := range tests {
		got := Sum256([]byte(tc.in))
		if hex.EncodeToString(got[:]) != tc.want {
			t.Errorf("Sum256(%q) = %x, want %s", tc.in, got, tc.want)
		}
	}
}

func TestStreamingMatchesOneShot(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		n := r.Intn(1000)
		data := make([]byte, n)
		r.Read(data)
		want := Sum256(data)

		h := New()
		// Write in random-sized chunks.
		rest := data
		for len(rest) > 0 {
			c := r.Intn(len(rest)) + 1
			h.Write(rest[:c])
			rest = rest[c:]
		}
		got := h.Sum(nil)
		if !bytes.Equal(got, want[:]) {
			t.Fatalf("streaming mismatch for %d bytes", n)
		}
	}
}

func TestSumDoesNotMutateState(t *testing.T) {
	h := New()
	h.Write([]byte("partial"))
	first := h.Sum(nil)
	second := h.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatal("Sum mutated hasher state")
	}
	h.Write([]byte(" more"))
	want := Sum256([]byte("partial more"))
	if !bytes.Equal(h.Sum(nil), want[:]) {
		t.Fatal("Write after Sum produced wrong digest")
	}
}

func TestReset(t *testing.T) {
	h := New()
	h.Write([]byte("garbage"))
	h.Reset()
	h.Write([]byte("abc"))
	want := Sum256([]byte("abc"))
	if !bytes.Equal(h.Sum(nil), want[:]) {
		t.Fatal("Reset did not clear state")
	}
}

func TestInterfaceSizes(t *testing.T) {
	h := New()
	if h.Size() != 32 {
		t.Fatalf("Size = %d, want 32", h.Size())
	}
	if h.BlockSize() != 136 {
		t.Fatalf("BlockSize = %d, want 136", h.BlockSize())
	}
}

func TestSum256Concat(t *testing.T) {
	a := []byte("hello ")
	b := []byte("world")
	want := Sum256([]byte("hello world"))
	got := Sum256Concat(a, b)
	if got != want {
		t.Fatal("Sum256Concat mismatch")
	}
}

// TestBlockBoundaries hashes inputs of every length around the sponge rate
// to exercise all padding branch combinations against the streaming path.
func TestBlockBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 134, 135, 136, 137, 271, 272, 273, 500} {
		data := bytes.Repeat([]byte{0xa5}, n)
		oneShot := Sum256(data)
		h := New()
		for _, c := range data {
			h.Write([]byte{c})
		}
		if !bytes.Equal(h.Sum(nil), oneShot[:]) {
			t.Fatalf("byte-at-a-time mismatch at length %d", n)
		}
	}
}

func TestDifferentInputsDiffer(t *testing.T) {
	a := Sum256([]byte("input-a"))
	b := Sum256([]byte("input-b"))
	if a == b {
		t.Fatal("distinct inputs produced identical digests")
	}
}

func BenchmarkSum256_32B(b *testing.B) {
	data := make([]byte, 32)
	b.SetBytes(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}

func BenchmarkSum256_1KB(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}

package tinyevm

import (
	"fmt"
	"time"
)

// EventType classifies service events delivered on Subscribe streams.
type EventType int

// Event types.
const (
	// EventChannelOpened: a channel is live on the observing node —
	// emitted on the opener when OpenChannel returns and on the peer
	// when the announcement is replicated.
	EventChannelOpened EventType = iota + 1
	// EventPaymentReceived: an incoming off-chain payment was verified
	// and registered on the observing node. Conditional (hash-locked)
	// payments carry a non-zero Payment.HashLock and do not advance the
	// channel state until claimed.
	EventPaymentReceived
	// EventChannelClosed: a doubly-signed final state is recorded on the
	// observing node (both the close acceptor and the initiator see it).
	EventChannelClosed
	// EventClaimSettled: the preimage of an outstanding conditional
	// payment arrived; the payment this node previously sent is final.
	EventClaimSettled
	// EventSensorData: the peer pushed sensor readings.
	EventSensorData
	// EventDispute: the on-chain template recorded fraud — a committed
	// channel state was superseded by a higher-sequence state submitted
	// by the counterparty. Broadcast to every subscriber.
	EventDispute
	// EventBlockSealed: the main chain sealed a block. Broadcast to
	// every subscriber.
	EventBlockSealed
	// EventError: an incoming wire message failed verification or
	// dispatch on the observing node; Err carries the typed cause.
	EventError
)

// String returns the kebab-case name used on the JSON-RPC wire.
func (t EventType) String() string {
	switch t {
	case EventChannelOpened:
		return "channel-opened"
	case EventPaymentReceived:
		return "payment-received"
	case EventChannelClosed:
		return "channel-closed"
	case EventClaimSettled:
		return "claim-settled"
	case EventSensorData:
		return "sensor-data"
	case EventDispute:
		return "dispute"
	case EventBlockSealed:
		return "block-sealed"
	case EventError:
		return "error"
	default:
		return fmt.Sprintf("event-%d", int(t))
	}
}

// Event is one observation delivered to a Subscribe stream. Fields
// beyond Type, Node and Time are populated per type; pointers reference
// immutable protocol artifacts and must not be mutated.
type Event struct {
	// Type discriminates the payload.
	Type EventType
	// Node is the name of the observing node ("" for broadcast events).
	Node string
	// Time is the service wall-clock timestamp (see WithClock).
	Time time.Time

	// Channel is the observing node's local channel handle.
	Channel uint64
	// Peer is the counterparty (channel events), the cheating address
	// (disputes) or the data source (sensor data).
	Peer Address
	// Seq and Amount summarize payment/close events: Seq is the channel
	// sequence number, Amount the incremental wei of a payment.
	Seq    uint64
	Amount uint64

	// Payment is the verified payment (payment-received, claim-settled).
	Payment *Payment
	// Final is the doubly-signed close state (channel-closed).
	Final *FinalState
	// Readings are the pushed sensor values (sensor-data).
	Readings []SensorReading

	// Block is the sealed block number (block-sealed) or the commit
	// height (dispute).
	Block uint64
	// Err is the dispatch failure (error events).
	Err error
}

package tinyevm

// The durable operation log behind WithStore/WithDataDir: every
// state-changing service operation is journaled as one opRecord BEFORE
// it executes (write-ahead intent logging), and NewService replays the
// log through the exact same dispatcher to reconstruct the deployment
// after a crash or restart.
//
// Why replay works: the whole simulation is deterministic. Device keys
// derive from node names, ECDSA signing uses RFC 6979 nonces, the radio
// loss process is seeded, and block timestamps follow the fixed
// interval. The only nondeterministic inputs — routing secrets and
// sensor readings — are captured inside the records themselves, so
// replaying the log reproduces balances, channels, blocks and state
// digests byte-for-byte. The chain's persistence hook cross-checks
// this on every replayed seal: a block that does not match the record
// already in the store fails recovery instead of silently forking
// history.
//
// Keyspace (under the service's "op/" namespace of the shared store):
//
//	op/<seq %016x> -> opRecord JSON
//
// The log is append-only through the KVStore; on the WAL backend each
// record is one checksummed batch. Logging intent-first means an
// operation that was journaled but not acknowledged before a crash is
// still applied on recovery — the durability contract is "acknowledged
// operations survive; the tail may include the in-flight one".

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"tinyevm/internal/protocol"
	"tinyevm/internal/store"
	"tinyevm/internal/store/disk"
	"tinyevm/internal/types"
)

// Operation kinds journaled to the store.
const (
	opAddNode        = "addNode"
	opRegisterSensor = "registerSensorValue"
	opOpenChannel    = "openChannel"
	opPay            = "pay"
	opPayConditional = "payConditional"
	opClaim          = "claim"
	opClose          = "close"
	opReopen         = "reopen"
	opRoutePayment   = "routePayment"
	opSendSensorData = "sendSensorData"
	opDeposit        = "deposit"
	opCommit         = "commit"
	opExit           = "exit"
	opSettle         = "settle"
	opMineBlock      = "mineBlock"
	opRunChallenge   = "runChallengePeriod"
	opDeployContract = "deployContract"
	opCallContract   = "callContract"
)

// opStep is one hop of a journaled multi-hop route.
type opStep struct {
	Node    string `json:"node"`
	Channel uint64 `json:"channel"`
}

// opReading is one journaled sensor reading (nondeterministic input,
// captured at log time so replay does not touch the sensor bus).
type opReading struct {
	ID    uint64 `json:"id"`
	Value uint64 `json:"value"`
}

// opRecord is one journaled operation. A flat union over every op kind;
// unused fields stay empty in the JSON.
type opRecord struct {
	Seq uint64 `json:"seq"`
	Op  string `json:"op"`

	Node        string      `json:"node,omitempty"`
	Name        string      `json:"name,omitempty"`
	Peer        string      `json:"peer,omitempty"`
	Channel     uint64      `json:"channel,omitempty"`
	Amount      uint64      `json:"amount,omitempty"`
	Fee         uint64      `json:"fee,omitempty"`
	Deposit     uint64      `json:"deposit,omitempty"`
	SensorParam uint64      `json:"sensorParam,omitempty"`
	SensorID    uint64      `json:"sensorId,omitempty"`
	Value       uint64      `json:"value,omitempty"`
	Lock        string      `json:"lock,omitempty"`
	Secret      string      `json:"secret,omitempty"`
	Final       string      `json:"final,omitempty"`
	Receiver    string      `json:"receiver,omitempty"`
	Steps       []opStep    `json:"steps,omitempty"`
	Readings    []opReading `json:"readings,omitempty"`
	Data        string      `json:"data,omitempty"`
	Addr        string      `json:"addr,omitempty"`
}

// opResult carries the typed results of applyLocked back to the public
// wrappers; replay discards it.
type opResult struct {
	node    *ServiceNode
	channel ChannelState
	pay     *Payment
	fs      *FinalState
	receipt *Receipt
	data    *SensorData
	deploy  DeployResult
	call    CallResult
	lock    Hash
}

const opKeyPrefix = "op/"

func opKey(seq uint64) []byte { return []byte(fmt.Sprintf("%s%016x", opKeyPrefix, seq)) }

// serviceMeta pins the deployment parameters that change replay
// semantics. It is written the first time a store is used and verified
// on every recovery: replaying a log under a different provider name,
// challenge period or radio loss process would reconstruct a different
// history, so it is refused up front.
type serviceMeta struct {
	Provider        string  `json:"provider"`
	ChallengePeriod uint64  `json:"challengePeriod"`
	RadioSeed       int64   `json:"radioSeed"`
	RadioLossRate   float64 `json:"radioLossRate"`
	// StateCommitment is "" for the legacy full-state digest and "mst"
	// for the incremental Merkle-sum-tree commitment — persisted state
	// commitments differ between the modes, so a store written in one
	// refuses to open in the other. Stores from before the knob existed
	// decode to "" and keep working in digest mode.
	StateCommitment string `json:"stateCommitment,omitempty"`
}

const serviceMetaKey = "meta/service"

// checkMeta verifies (or, on first use, records) the store's deployment
// parameters.
func (s *Service) checkMeta(meta serviceMeta) error {
	data, ok, err := s.ops.Get([]byte(serviceMetaKey))
	if err != nil {
		return err
	}
	if !ok {
		out, err := json.Marshal(meta)
		if err != nil {
			return err
		}
		return s.ops.Put([]byte(serviceMetaKey), out)
	}
	var have serviceMeta
	if err := json.Unmarshal(data, &have); err != nil {
		return fmt.Errorf("tinyevm: decoding store meta: %w", err)
	}
	if have != meta {
		return fmt.Errorf("tinyevm: store belongs to a different deployment (store %+v, requested %+v)", have, meta)
	}
	return nil
}

// logOp journals rec as the next sequence entry. With no store attached
// it is a no-op. The append happens BEFORE the operation executes;
// a failed append fails the operation without applying it.
//
// The sequencer lock (logMu) makes seq assignment + append atomic, so
// concurrent sharded operations get dense, crash-consistent sequence
// numbers. Callers still hold their shard locks (or the exclusive
// service lock) across logOp AND the subsequent applyLocked, which is
// what guarantees that conflicting operations are journaled in their
// execution order — see the linearization argument in shard.go.
func (s *Service) logOp(rec *opRecord) error {
	if s.ops == nil {
		return nil
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	rec.Seq = s.opSeq
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("tinyevm: encoding op record: %w", err)
	}
	if err := s.ops.Put(opKey(rec.Seq), data); err != nil {
		return fmt.Errorf("tinyevm: journaling %s op: %w", rec.Op, err)
	}
	s.opSeq++
	return nil
}

// run executes one journaled operation. Pairwise operations go down
// the sharded hot path (read lock + shard stripes, see shard.go);
// everything else serializes on the exclusive service lock. Both paths
// append the intent record, apply, then surface any persistence error
// the chain latched while sealing.
func (s *Service) run(ctx context.Context, rec *opRecord) (opResult, error) {
	if opIsSharded(rec.Op) {
		return s.runSharded(ctx, rec)
	}
	var res opResult
	err := s.do(ctx, func() error {
		if err := s.logOp(rec); err != nil {
			return err
		}
		var err error
		res, err = s.applyLocked(rec)
		if serr := s.sys.Chain.StoreErr(); serr != nil {
			return fmt.Errorf("tinyevm: persistence failed: %w", serr)
		}
		// Exclusive-path ops are the only ones that seal blocks, so this
		// is the one place the checkpoint cadence can trip. The op's own
		// error (if any) wins the return; a checkpoint failure surfaces
		// only when the op itself succeeded.
		if cerr := s.maybeCheckpointLocked(); cerr != nil && err == nil {
			err = cerr
		}
		return err
	})
	return res, err
}

// replayOps re-applies the journaled operation log against the freshly
// built (or checkpoint-restored) system, returning how many operations
// replayed. Records below the checkpoint watermark (s.opSeq, set by
// restoreFromCheckpoint; 0 without one) are already folded into the
// snapshot and are skipped — checkpointing prunes them atomically, so
// normally none exist. Operation-level errors are ignored (the
// original attempt failed identically); decode failures and
// chain/store divergence abort the recovery.
func (s *Service) replayOps() (int, error) {
	count := 0
	watermark := s.opSeq
	err := s.ops.Iterate([]byte(opKeyPrefix), func(key, value []byte) error {
		var rec opRecord
		if err := json.Unmarshal(value, &rec); err != nil {
			return fmt.Errorf("tinyevm: decoding op record %s: %w", key, err)
		}
		if rec.Seq < watermark {
			return nil
		}
		if rec.Seq >= s.opSeq {
			s.opSeq = rec.Seq + 1 // single-threaded recovery; no logMu needed
		}
		// The op's own outcome is deterministic and may legitimately be
		// an error (it failed the first time too); replay divergence is
		// caught by the chain's per-block verification below.
		_, _ = s.applyLocked(&rec)
		count++
		return nil
	})
	if err != nil {
		return count, err
	}
	if err := s.sys.Chain.StoreErr(); err != nil {
		return count, fmt.Errorf("tinyevm: recovery verification failed after %d ops: %w", count, err)
	}
	if err := s.sys.Chain.VerifyStoreHead(); err != nil {
		return count, fmt.Errorf("tinyevm: recovery verification failed after %d ops: %w", count, err)
	}
	return count, nil
}

// applyLocked dispatches one operation. It must run with the locks of
// its path held — the exclusive service lock for global operations, or
// the read lock plus the pair's shard stripes for pairwise ones (or
// during single-threaded recovery, where no locks are needed) — and
// contains the ONLY implementation of every journaled operation: the
// live path and the replay path cannot drift apart. Pairwise cases
// dispatch wire traffic scoped to their own pair (opScope); because
// every operation fully drains the messages it generates, all inboxes
// are empty between operations and pair-scoped dispatch delivers
// exactly what a global sweep would.
func (s *Service) applyLocked(rec *opRecord) (opResult, error) {
	var res opResult
	switch rec.Op {
	case opAddNode:
		n, err := s.sys.AddNode(rec.Name)
		if err != nil {
			return res, err
		}
		res.node = s.adopt(n)
		return res, nil

	case opRegisterSensor:
		sn, err := s.nodeLocked(rec.Node)
		if err != nil {
			return res, err
		}
		value := rec.Value
		sn.n.RegisterSensor(rec.SensorID, func(uint64) (uint64, error) { return value, nil })
		// Track the registration for checkpoints (closures cannot be
		// snapshotted; the fixed value can). Sharded op → own lock.
		s.sensorMu.Lock()
		s.sensorRegs = append(s.sensorRegs, ckptSensor{Node: rec.Node, ID: rec.SensorID, Value: value})
		s.sensorMu.Unlock()
		return res, nil

	case opOpenChannel:
		sn, err := s.nodeLocked(rec.Node)
		if err != nil {
			return res, err
		}
		peer, err := decodeAddr(rec.Peer)
		if err != nil {
			return res, err
		}
		cs, err := sn.n.OpenChannel(peer, rec.Deposit, rec.SensorParam)
		if err != nil {
			return res, err
		}
		s.emit(Event{
			Type: EventChannelOpened, Node: sn.n.Name(),
			Channel: cs.ID, Peer: cs.Peer, Amount: cs.Deposit,
		})
		res.channel = *cs
		return res, deliveryErr(s.dispatch(s.opScope(rec, sn)))

	case opPay:
		sn, err := s.nodeLocked(rec.Node)
		if err != nil {
			return res, err
		}
		res.pay, err = sn.n.Pay(rec.Channel, rec.Amount)
		if err != nil {
			return res, err
		}
		return res, deliveryErr(s.dispatch(s.opScope(rec, sn)))

	case opPayConditional:
		sn, err := s.nodeLocked(rec.Node)
		if err != nil {
			return res, err
		}
		lock, err := decodeHash(rec.Lock)
		if err != nil {
			return res, err
		}
		res.pay, err = sn.n.PayConditional(rec.Channel, rec.Amount, lock)
		if err != nil {
			return res, err
		}
		return res, deliveryErr(s.dispatch(s.opScope(rec, sn)))

	case opClaim:
		sn, err := s.nodeLocked(rec.Node)
		if err != nil {
			return res, err
		}
		secret, err := decodeSecret(rec.Secret)
		if err != nil {
			return res, err
		}
		res.pay, err = sn.n.ClaimConditional(rec.Channel, secret)
		if err != nil {
			return res, err
		}
		return res, deliveryErr(s.dispatch(s.opScope(rec, sn)))

	case opClose:
		sn, err := s.nodeLocked(rec.Node)
		if err != nil {
			return res, err
		}
		if _, err := sn.n.CloseChannel(rec.Channel); err != nil {
			return res, err
		}
		errs := s.dispatch(s.opScope(rec, sn))
		cs, ok := sn.n.Channel(rec.Channel)
		if !ok || cs.Final == nil {
			if len(errs) > 0 {
				return res, errs[0]
			}
			return res, ErrIncompleteClose
		}
		res.fs = cs.Final
		return res, nil

	case opReopen:
		sn, err := s.nodeLocked(rec.Node)
		if err != nil {
			return res, err
		}
		return res, sn.n.Reopen(rec.Channel)

	case opRoutePayment:
		secret, err := decodeSecret(rec.Secret)
		if err != nil {
			return res, err
		}
		return s.applyRoute(rec, secret)

	case opSendSensorData:
		sn, err := s.nodeLocked(rec.Node)
		if err != nil {
			return res, err
		}
		peer, err := decodeAddr(rec.Peer)
		if err != nil {
			return res, err
		}
		readings := make([]protocol.SensorReading, len(rec.Readings))
		for i, r := range rec.Readings {
			readings[i] = protocol.SensorReading{ID: r.ID, Value: r.Value}
		}
		res.data, err = sn.n.SendSensorReadings(peer, readings)
		if err != nil {
			return res, err
		}
		return res, deliveryErr(s.dispatch(s.opScope(rec, sn)))

	case opDeposit:
		return s.applyChainOp(rec.Node, func(sn *ServiceNode, ts protocol.TxSender) (*Receipt, error) {
			return sn.n.DepositOnChain(ts, rec.Amount)
		})

	case opCommit:
		fs, err := decodeFinalState(rec.Final)
		if err != nil {
			return res, err
		}
		return s.applyChainOp(rec.Node, func(sn *ServiceNode, ts protocol.TxSender) (*Receipt, error) {
			return sn.n.CommitOnChain(ts, fs)
		})

	case opExit:
		return s.applyChainOp(rec.Node, func(sn *ServiceNode, ts protocol.TxSender) (*Receipt, error) {
			return sn.n.ExitOnChain(ts)
		})

	case opSettle:
		return s.applyChainOp(rec.Node, func(sn *ServiceNode, ts protocol.TxSender) (*Receipt, error) {
			return sn.n.SettleOnChain(ts)
		})

	case opMineBlock:
		if s.cluster != nil {
			if err := s.cluster.CheckProposerLocked(); err != nil {
				return res, err
			}
			s.cluster.ProduceBlockLocked()
		} else if s.eng != nil {
			s.eng.MineBlock()
		} else {
			s.sys.Chain.MineBlock()
		}
		return res, nil

	case opRunChallenge:
		if s.cluster != nil {
			// Sealing a burst of blocks outside the leader schedule would
			// be rejected by every peer; the heartbeat miner advances
			// challenge periods instead.
			return res, fmt.Errorf("%w: RunChallengePeriod (let the heartbeat miner advance the chain)", ErrClusterOp)
		}
		return res, s.sys.RunChallengePeriod()

	case opDeployContract:
		sn, err := s.nodeLocked(rec.Node)
		if err != nil {
			return res, err
		}
		initCode, err := hex.DecodeString(rec.Data)
		if err != nil {
			return res, err
		}
		res.deploy = sn.n.DeployContract(initCode)
		return res, nil

	case opCallContract:
		sn, err := s.nodeLocked(rec.Node)
		if err != nil {
			return res, err
		}
		addr, err := decodeAddr(rec.Addr)
		if err != nil {
			return res, err
		}
		input, err := hex.DecodeString(rec.Data)
		if err != nil {
			return res, err
		}
		res.call = sn.n.CallContract(addr, input, rec.Value)
		return res, nil
	}
	return res, fmt.Errorf("tinyevm: unknown journaled op %q", rec.Op)
}

// applyRoute executes a journaled multi-hop payment (RoutePayment's
// body, with the recorded secret).
func (s *Service) applyRoute(rec *opRecord, secret Secret) (opResult, error) {
	var res opResult
	recv, ok := s.nodes[rec.Receiver]
	if !ok {
		return res, fmt.Errorf("%w: %q", ErrUnknownNode, rec.Receiver)
	}
	parties := make([]*ServiceNode, 0, len(rec.Steps)+1)
	hops := make([]RouteHop, 0, len(rec.Steps))
	for _, st := range rec.Steps {
		sn, ok := s.nodes[st.Node]
		if !ok {
			return res, fmt.Errorf("%w: %q", ErrUnknownNode, st.Node)
		}
		parties = append(parties, sn)
		hops = append(hops, RouteHop{From: sn.n.Party, ChannelID: st.Channel})
	}
	parties = append(parties, recv)

	lock, err := protocol.RoutePaymentWithSecret(hops, recv.n.Party, rec.Amount, rec.Fee, secret)
	res.lock = lock
	if err != nil {
		s.dispatch(nil)
		return res, err
	}
	// The route consumed its wire messages lockstep internally, so
	// publish the per-hop events the normal dispatch path would have.
	for i, st := range rec.Steps {
		payer, payee := parties[i], parties[i+1]
		pcs, ok := payer.n.Channel(st.Channel)
		if !ok {
			continue
		}
		hopAmount := rec.Amount + uint64(len(rec.Steps)-1-i)*rec.Fee
		if rcs, ok := payee.n.Party.ChannelByOpener(pcs.Template, pcs.WireID, pcs.Opener); ok {
			s.emit(Event{
				Type: EventPaymentReceived, Node: payee.n.Name(),
				Channel: rcs.ID, Peer: rcs.Peer,
				Seq: rcs.Seq, Amount: hopAmount, Payment: rcs.LastPayment,
			})
		}
		s.emit(Event{
			Type: EventClaimSettled, Node: payer.n.Name(),
			Channel: pcs.ID, Peer: pcs.Peer,
			Seq: pcs.Seq, Payment: pcs.LastPayment,
		})
	}
	return res, firstErr(s.dispatch(nil))
}

// applyChainOp runs one on-chain operation for the named node and
// refreshes dispute bookkeeping, mirroring the pre-journal chainOp.
func (s *Service) applyChainOp(node string, fn func(*ServiceNode, protocol.TxSender) (*Receipt, error)) (opResult, error) {
	var res opResult
	sn, err := s.nodeLocked(node)
	if err != nil {
		return res, err
	}
	res.receipt, err = fn(sn, s.txSender())
	s.checkDisputes()
	return res, err
}

// nodeLocked resolves a node name under the calling path's locks (the
// node table is only mutated while the exclusive lock is held, so a
// read-locked sharded op may look up freely).
func (s *Service) nodeLocked(name string) (*ServiceNode, error) {
	sn, ok := s.nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	return sn, nil
}

// --- field encodings ---------------------------------------------------

func decodeAddr(s string) (types.Address, error) {
	a, err := types.HexToAddress(s)
	if err != nil {
		return types.Address{}, fmt.Errorf("tinyevm: op record address: %w", err)
	}
	return a, nil
}

func decodeHash(s string) (Hash, error) {
	h, err := types.HexToHash(s)
	if err != nil {
		return Hash{}, fmt.Errorf("tinyevm: op record hash: %w", err)
	}
	return h, nil
}

func encodeSecret(sec Secret) string { return hex.EncodeToString(sec[:]) }

func decodeSecret(s string) (Secret, error) {
	var sec Secret
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(sec) {
		return sec, errors.New("tinyevm: op record secret malformed")
	}
	copy(sec[:], b)
	return sec, nil
}

// encodeFinalState reuses the protocol wire encoding (which round-trips
// signatures exactly) and wraps it in hex for the JSON record.
func encodeFinalState(fs *FinalState) string {
	return hex.EncodeToString(protocol.EncodeFinalState(protocol.MsgCloseRequest, fs))
}

func decodeFinalState(s string) (*FinalState, error) {
	buf, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("tinyevm: op record final state: %w", err)
	}
	_, fs, err := protocol.DecodeFinalState(buf)
	if err != nil {
		return nil, fmt.Errorf("tinyevm: op record final state: %w", err)
	}
	return fs, nil
}

// openDataDir opens the service-owned store under dir: the WAL file by
// default, the embedded disk backend with WithStoreBackend("disk").
// TINYEVM_DISK_FLUSH_BYTES overrides the disk backend's memtable flush
// threshold — the store-smoke harness shrinks it to force segment
// flushes and background compactions within a short workload.
func openDataDir(dir, backend string) (store.KVStore, error) {
	switch backend {
	case "", "wal":
		return store.OpenWAL(filepath.Join(dir, "tinyevm.wal"))
	case "disk":
		var opts []disk.Option
		if v := os.Getenv("TINYEVM_DISK_FLUSH_BYTES"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("tinyevm: bad TINYEVM_DISK_FLUSH_BYTES %q", v)
			}
			opts = append(opts, disk.WithFlushBytes(n))
		}
		return disk.Open(filepath.Join(dir, "store"), opts...)
	default:
		return nil, fmt.Errorf("tinyevm: unknown store backend %q (want \"wal\" or \"disk\")", backend)
	}
}

package tinyevm_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§VI), exposed through `go test -bench`. The heavier
// experiments use reduced populations here; cmd/benchtables runs the
// full-scale versions (7,000 contracts, 200 rounds) and prints the
// paper-style artifacts.
//
//	go test -bench=. -benchmem
//	go run ./cmd/benchtables -all
//
// Custom metrics are reported with benchmark-standard units so the
// measured values (on the simulated device clock) appear next to the
// host-side ns/op numbers.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"tinyevm"
	"tinyevm/internal/chain"
	"tinyevm/internal/cluster"
	"tinyevm/internal/consensus"
	"tinyevm/internal/corpus"
	"tinyevm/internal/device"
	"tinyevm/internal/engine"
	"tinyevm/internal/eval"
	"tinyevm/internal/evm"
	"tinyevm/internal/p2p"
	"tinyevm/internal/protocol"
	"tinyevm/internal/secp256k1"
	"tinyevm/internal/types"
	"tinyevm/internal/uint256"
)

// BenchmarkTableI_OpcodeCategories regenerates Table I (spec comparison)
// by introspecting the live opcode tables.
func BenchmarkTableI_OpcodeCategories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := eval.RunTableI()
		if t.Tiny.SmartContract != 21 {
			b.Fatal("Table I drifted")
		}
	}
}

// BenchmarkTableII_Fig3_Fig4_Deploy runs the corpus deployment
// experiment (Table II, Figures 3a-3c and 4) on a reduced population and
// reports the key measured values as custom metrics.
func BenchmarkTableII_Fig3_Fig4_Deploy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := eval.RunCorpus(context.Background(), 300, nil)
		b.ReportMetric(100*rep.SuccessRate(), "%deployable")
		b.ReportMetric(rep.TimeSummary.Mean, "ms-mean-deploy")
		b.ReportMetric(rep.StackSummary.Mean, "words-mean-SP")
	}
}

// BenchmarkTableIII_Footprint regenerates the Table III memory budget.
func BenchmarkTableIII_Footprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := eval.RunTableIII()
		if f.UsedRAM == 0 {
			b.Fatal("footprint empty")
		}
	}
	f := eval.RunTableIII()
	b.ReportMetric(float64(f.UsedRAM), "B-RAM-used")
}

// BenchmarkTableIV_Fig5_OffchainRound runs full off-chain rounds
// (Table IV / Figure 5) and reports the car-side energy and active time.
func BenchmarkTableIV_Fig5_OffchainRound(b *testing.B) {
	var lastEnergy, lastActive float64
	for i := 0; i < b.N; i++ {
		s, err := protocol.NewScenario(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		r, err := protocol.RunParkingRound(s, 10_000, 250, 300*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		lastEnergy = r.CarEnergy.TotalEnergyMJ
		lastActive = float64(r.ActiveTime.Microseconds()) / 1000
	}
	b.ReportMetric(lastEnergy, "mJ/round")
	b.ReportMetric(lastActive, "ms-active/round")
}

// BenchmarkTableV_CryptoOps measures the device crypto engine (Table V).
func BenchmarkTableV_CryptoOps(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		t := eval.RunTableV()
		total = t.Total()
	}
	b.ReportMetric(float64(total.Microseconds())/1000, "ms-crypto-round")
}

// BenchmarkPayment measures one off-chain payment end to end (the
// paper's 584 ms claim), on the simulated device clocks.
func BenchmarkPayment(b *testing.B) {
	s, err := protocol.NewScenario(7)
	if err != nil {
		b.Fatal(err)
	}
	cs, err := s.Car.OpenChannel(s.Lot.Address(), 500_000_000, 0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Lot.AcceptChannel(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last time.Duration
	for i := 0; i < b.N; i++ {
		lat, err := protocol.PaymentLatency(s, cs.ID, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = lat
	}
	b.ReportMetric(float64(last.Microseconds())/1000, "ms-device-latency")
}

// BenchmarkDeploy4KBContract measures deploying one representative 4 KB
// contract (the corpus mean) — the unit behind Figure 4.
func BenchmarkDeploy4KBContract(b *testing.B) {
	params := corpus.DefaultParams(64)
	contracts := corpus.Generate(params)
	// Pick the contract closest to 4 KB.
	best := contracts[0]
	for _, c := range contracts {
		if diff(len(c.InitCode), 4096) < diff(len(best.InitCode), 4096) {
			best = c
		}
	}
	dev := device.New("bench-deploy")
	b.ResetTimer()
	var last time.Duration
	for i := 0; i < b.N; i++ {
		dev.ResetMeasurement()
		res := dev.Deploy(best.InitCode, 0)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		last = res.Time
	}
	b.ReportMetric(float64(last.Microseconds())/1000, "ms-device-time")
	b.ReportMetric(float64(len(best.InitCode)), "B-contract")
}

// BenchmarkAblationWordWidth runs the word-width ablation.
func BenchmarkAblationWordWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := eval.RunWordWidthAblation()
		if len(rows) != 3 {
			b.Fatal("ablation broken")
		}
	}
}

// BenchmarkEVMTransferCall measures the raw interpreter on a minimal
// value-return contract (host-side performance of the VM itself).
func BenchmarkEVMTransferCall(b *testing.B) {
	sys, node, err := tinyevm.NewSystem(tinyevm.DefaultConfig(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	_ = sys
	code, err := tinyevm.Assemble(`
		PUSH1 0x2a
		PUSH1 0x00
		MSTORE
		PUSH1 0x20
		PUSH1 0x00
		RETURN
	`)
	if err != nil {
		b.Fatal(err)
	}
	// The constructor is 12 bytes, so the 10-byte runtime starts at
	// offset 0x0c.
	init, err := tinyevm.Assemble(`
		PUSH1 0x0a
		PUSH1 0x0c
		PUSH1 0x00
		CODECOPY
		PUSH1 0x0a
		PUSH1 0x00
		RETURN
	`)
	if err != nil {
		b.Fatal(err)
	}
	init = append(init, code...)
	res := node.DeployContract(init)
	if res.Err != nil {
		b.Fatal(res.Err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := node.CallContract(res.Address, nil, 0)
		if out.Err != nil {
			b.Fatal(out.Err)
		}
	}
}

// BenchmarkInterpreterThroughput measures raw interpreter steps/sec —
// the figure behind the §III-C "hundreds of MCU cycles per opcode"
// discussion — across three workloads: the historical tight arithmetic
// loop, the ERC-20 transfer hot path (dispatch + three storage slots),
// and the single-slot counter increment. Each variant warms the
// per-code-hash execution counter past the tier-1 promotion threshold
// before the timed loop, so the steady state measured is the fused
// basic-block interpreter (set TINYEVM_FUSION=off to measure tier-0).
// Under TINYEVM_PROFILE_OPS (the benchreport -profile-ops flag),
// per-opcode and per-superinstruction hit counts are reported as custom
// metrics.
func BenchmarkInterpreterThroughput(b *testing.B) {
	arith, err := tinyevm.Assemble(`
		PUSH2 0x0200
		:loop JUMPDEST
		PUSH1 1
		SWAP1
		SUB
		DUP1
		ISZERO
		PUSH :done
		JUMPI
		PUSH :loop
		JUMP
		:done JUMPDEST
		STOP
	`)
	if err != nil {
		b.Fatal(err)
	}
	runtimes := eval.WorkloadRuntimes()
	caller, _ := tinyevm.HexToAddress("0x00000000000000000000000000000000000000bb")
	recipient := make([]byte, 32)
	recipient[31] = 0x42
	amount := make([]byte, 32)
	amount[31] = 1
	transferData := eval.CallData(eval.Selector("transfer(address,uint256)"),
		[32]byte(recipient), [32]byte(amount))

	variants := []struct {
		name  string
		code  []byte
		input []byte
		// seed prepares contract storage (ModeTiny truncates storage
		// keys to their low byte, so seeds must use truncated slots).
		seed func(st *evm.MemState, contract types.Address)
	}{
		{name: "arith", code: arith},
		{name: "erc20", code: runtimes["erc20"], input: transferData,
			seed: func(st *evm.MemState, contract types.Address) {
				// Fund the caller's balance slot (keyed by address, low
				// byte 0xbb under 8-bit tiny keys) so transfers succeed.
				st.SetState(contract, uint256.NewInt(uint64(caller[19])), uint256.NewInt(1<<40))
			}},
		{name: "counter", code: runtimes["inccounter"]},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			state := evm.NewMemState()
			addr, _ := tinyevm.HexToAddress("0x00000000000000000000000000000000000000aa")
			state.SetCode(addr, v.code)
			if v.seed != nil {
				v.seed(state, addr)
			}
			vm := evm.New(evm.TinyConfig(), state)
			// Warm past the tier-1 promotion threshold so b.N measures
			// the steady state, not the tier transition.
			for i := 0; i < 8; i++ {
				if res := vm.Call(caller, addr, v.input, uint256.NewInt(0), 0); res.Err != nil {
					b.Fatal(res.Err)
				}
			}
			evm.ResetOpProfile()
			b.ReportAllocs()
			b.ResetTimer()
			steps := uint64(0)
			for i := 0; i < b.N; i++ {
				res := vm.Call(caller, addr, v.input, uint256.NewInt(0), 0)
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				steps += res.Stats.Steps
			}
			b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
			if evm.OpProfileEnabled() {
				for name, hits := range evm.OpProfile() {
					b.ReportMetric(float64(hits)/float64(b.N), name+"/op")
				}
			}
		})
	}
}

// BenchmarkSnapshotRevert measures the journaled snapshot machinery on
// deep call trees with reverts — the cost that used to be a full
// deep-copy of the account map on EVERY call frame and is now
// O(writes-since-snapshot).
//
// calltree: a contract that writes one slot per frame and calls itself
// recursively; the innermost frame REVERTs, so every execution
// exercises nested Snapshot + one revert + depth discards, over a
// populated state (512 accounts) that the old implementation copied
// per frame.
//
// memstate: the raw MemState discipline without the interpreter —
// nested snapshots, K writes per level, half reverted half discarded.
func BenchmarkSnapshotRevert(b *testing.B) {
	populate := func() *evm.MemState {
		state := evm.NewMemState()
		for i := 0; i < 512; i++ {
			var a tinyevm.Address
			a[0], a[18], a[19] = 0x51, byte(i>>8), byte(i)
			state.AddBalance(a, uint256.NewInt(uint64(1000+i)))
			state.SetState(a, uint256.NewInt(1), uint256.NewInt(uint64(i)))
		}
		return state
	}

	b.Run("calltree", func(b *testing.B) {
		code, err := tinyevm.Assemble(`
			PUSH1 0x00
			CALLDATALOAD
			DUP1
			ISZERO
			PUSH :leaf
			JUMPI
			DUP1
			DUP1
			SSTORE
			PUSH1 0x01
			SWAP1
			SUB
			PUSH1 0x00
			MSTORE
			PUSH1 0x00
			PUSH1 0x00
			PUSH1 0x20
			PUSH1 0x00
			PUSH1 0x00
			ADDRESS
			PUSH2 0xffff
			CALL
			POP
			STOP
			:leaf JUMPDEST
			POP
			PUSH1 0x2a
			PUSH1 0x01
			SSTORE
			PUSH1 0x00
			PUSH1 0x00
			REVERT
		`)
		if err != nil {
			b.Fatal(err)
		}
		state := populate()
		addr, _ := tinyevm.HexToAddress("0x00000000000000000000000000000000000000aa")
		state.SetCode(addr, code)
		vm := evm.New(evm.TinyConfig(), state)
		caller, _ := tinyevm.HexToAddress("0x00000000000000000000000000000000000000bb")
		depth := make([]byte, 32)
		depth[31] = 12
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := vm.Call(caller, addr, depth, uint256.NewInt(0), 0)
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})

	b.Run("memstate", func(b *testing.B) {
		state := populate()
		var hot tinyevm.Address
		hot[19] = 0x51
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ids := make([]int, 0, 12)
			for d := 0; d < 12; d++ {
				ids = append(ids, state.Snapshot())
				state.AddBalance(hot, uint256.NewInt(1))
				state.SetState(hot, uint256.NewInt(uint64(d)), uint256.NewInt(uint64(i+1)))
			}
			// Discard the odd levels first — non-topmost discards, the
			// case the old implementation leaked — then revert the even
			// levels outward.
			for d := 1; d < 12; d += 2 {
				state.DiscardSnapshot(ids[d])
			}
			for d := 10; d >= 0; d -= 2 {
				state.RevertToSnapshot(ids[d])
			}
		}
	})
}

// BenchmarkEngineMineBlock compares serial block production against the
// parallel off-chain execution engine at 1, 4 and 16 workers on the
// canonical multi-device workload (64 devices x 8 txs, 5% hot-contract
// traffic). Receipts are byte-identical across all configurations by
// construction (see internal/engine tests); this measures throughput.
// Speedup over serial requires multiple CPU cores — on a single-core
// host all configurations converge.
func BenchmarkEngineMineBlock(b *testing.B) {
	workload, err := eval.BuildEngineWorkload(eval.DefaultEngineWorkload())
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		var txs float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c, err := workload.NewChain()
			if err != nil {
				b.Fatal(err)
			}
			var receipts []*chain.Receipt
			if workers == 0 {
				for _, tx := range workload.Batch() {
					if err := c.Submit(tx); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				receipts = c.MineBlock()
			} else {
				eng := engine.New(c, engine.Options{Workers: workers})
				for _, tx := range workload.Batch() {
					if err := eng.Submit(tx); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				receipts = eng.MineBlock()
			}
			txs += float64(len(receipts))
		}
		b.ReportMetric(txs/b.Elapsed().Seconds(), "tx/s")
	}

	b.Run("serial", func(b *testing.B) { run(b, 0) })
	b.Run("workers-1", func(b *testing.B) { run(b, 1) })
	b.Run("workers-4", func(b *testing.B) { run(b, 4) })
	b.Run("workers-16", func(b *testing.B) { run(b, 16) })
}

func diff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// BenchmarkClusterGossipThroughput measures sidechain replication over
// the in-process transport: a single validator seals blocks of signed
// transfers and two follower replicas verify-and-apply every block off
// the gossip stream. One iteration is one transaction landed on ALL
// replicas; tx/s is the end-to-end replication rate.
func BenchmarkClusterGossipThroughput(b *testing.B) {
	const txPerBlock = 64
	net := p2p.NewMemNetwork()
	val := secp256k1.DeterministicKey("bench-cluster-val")
	sender := secp256k1.DeterministicKey("bench-cluster-sender")
	mk := func(i int, key *secp256k1.PrivateKey, peers []string) *cluster.Node {
		eng, err := consensus.NewRoundRobin([]types.Address{val.Address()}, 0)
		if err != nil {
			b.Fatal(err)
		}
		c := chain.New()
		c.Fund(sender.Address(), 1<<62)
		n, err := cluster.New(cluster.Config{
			Chain:         c,
			Engine:        eng,
			Key:           key,
			Transport:     net,
			Listen:        fmt.Sprintf("bench-cluster-%d", i),
			Peers:         peers,
			StrictDigests: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := n.Start(); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { n.Close() })
		return n
	}
	leader := mk(0, val, nil)
	followers := []*cluster.Node{
		mk(1, secp256k1.DeterministicKey("bench-cluster-f1"), []string{"bench-cluster-0"}),
		mk(2, secp256k1.DeterministicKey("bench-cluster-f2"), []string{"bench-cluster-0"}),
	}
	waitHeight := func(h uint64) {
		deadline := time.Now().Add(30 * time.Second)
		for _, f := range followers {
			for f.Status().Height < h {
				if time.Now().After(deadline) {
					b.Fatalf("follower stuck at %d, want %d", f.Status().Height, h)
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	to := types.Address{0xbe, 0xef}

	b.ResetTimer()
	nonce := uint64(0)
	for done := 0; done < b.N; {
		batch := txPerBlock
		if rem := b.N - done; rem < batch {
			batch = rem
		}
		for i := 0; i < batch; i++ {
			tx := chain.NewTx(nonce, &to, 1, nil)
			if err := tx.Sign(sender); err != nil {
				b.Fatal(err)
			}
			if err := leader.SubmitTx(tx); err != nil {
				b.Fatal(err)
			}
			nonce++
		}
		if _, err := leader.ProduceBlock(); err != nil {
			b.Fatal(err)
		}
		done += batch
	}
	head := leader.Status().Height
	waitHeight(head)
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tx/s")
	b.ReportMetric(float64(head), "blocks")
}

package tinyevm_test

// Store-smoke end-to-end: a real tinyevm-serve process on the disk
// backend (-backend disk) with a tight checkpoint cadence and the MST
// state commitment, its memtable flush threshold shrunk so the
// workload churns segment flushes and background compactions. The
// daemon is SIGKILLed mid-churn — with compactions plausibly in
// flight — restarted, and must come back with a byte-identical head
// hash and MST state root, having replayed only the journal tail
// behind the last checkpoint.
//
// Run directly with:
//
//	go test -race -run TestStoreSmokeE2E .
//
// (also wired into CI and `make store-smoke`).

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"tinyevm/internal/rpc"
)

func TestStoreSmokeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crashes a child process; skipped in -short")
	}

	bin := filepath.Join(t.TempDir(), "tinyevm-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/tinyevm-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tinyevm-serve: %v\n%s", err, out)
	}

	dataDir := t.TempDir()
	addr := freeAddr(t)
	client := rpc.NewClient("http://"+addr, nil)
	ctx := context.Background()

	const checkpointInterval = 4
	var proc *exec.Cmd
	start := func() {
		t.Helper()
		proc = exec.Command(bin,
			"-addr", addr, "-provider", "lot", "-data-dir", dataDir,
			"-backend", "disk",
			"-checkpoint-interval", fmt.Sprint(checkpointInterval),
			"-state-commitment", "mst")
		// A tiny memtable keeps the disk backend flushing and compacting
		// throughout the workload, so the SIGKILL lands with segment
		// rewrites plausibly in flight.
		proc.Env = append(os.Environ(), "TINYEVM_DISK_FLUSH_BYTES=16384")
		proc.Stderr = os.Stderr
		if err := proc.Start(); err != nil {
			t.Fatal(err)
		}
		waitReady(t, client)
	}
	kill := func() {
		t.Helper()
		if err := proc.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
			t.Fatal(err)
		}
		proc.Wait()
	}
	t.Cleanup(func() {
		if proc != nil && proc.ProcessState == nil {
			proc.Process.Kill()
			proc.Wait()
		}
	})

	// --- phase 1: churn the store until compactions have run ----------
	start()
	if _, err := client.AddNode(ctx, "car"); err != nil {
		t.Fatal(err)
	}
	ch, err := client.OpenChannel(ctx, "car", "lot", 500_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	churn := func(rounds int) {
		t.Helper()
		for i := 0; i < rounds; i++ {
			for j := 0; j < 8; j++ {
				if _, err := client.Pay(ctx, "car", ch.ID, 3); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := client.Deposit(ctx, "car", 25); err != nil { // seals a block
				t.Fatal(err)
			}
		}
	}
	churn(24)
	st, err := client.StoreStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != "disk" {
		t.Fatalf("backend is %q, want disk", st.Kind)
	}
	if st.Flushes == 0 || st.Compactions == 0 {
		t.Fatalf("workload did not churn the store (flushes=%d compactions=%d); shrink the flush threshold", st.Flushes, st.Compactions)
	}
	if st.CheckpointHeight == 0 {
		t.Fatal("no checkpoint written during churn")
	}

	// --- phase 2: SIGKILL with compaction churn still hot -------------
	// More writes right up to the kill keep flush/compaction goroutines
	// busy when it lands.
	churn(6)
	preKill := nodeStatusSnapshot(t, client)
	kill()

	// --- phase 3: restart, verify byte-identical head + state root ----
	start()
	post := nodeStatusSnapshot(t, client)
	if post.headHash != preKill.headHash || post.stateRoot != preKill.stateRoot {
		t.Fatalf("restart diverged:\n before %+v\n after  %+v", preKill, post)
	}
	st2, err := client.StoreStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.CheckpointHeight == 0 {
		t.Fatal("restart did not recover a checkpoint")
	}
	if post.head > st2.CheckpointHeight+2*checkpointInterval {
		t.Fatalf("restart not bounded by checkpoint tail: head %d vs checkpoint %d (interval %d)",
			post.head, st2.CheckpointHeight, checkpointInterval)
	}

	// A state proof verifies client-side against the recovered root.
	p, err := client.StateProof(ctx, "car")
	if err != nil {
		t.Fatal(err)
	}
	if err := rpc.VerifyStateProof(&p); err != nil {
		t.Fatalf("recovered state proof does not verify: %v", err)
	}

	// --- phase 4: kill again; recovery must be deterministic ----------
	kill()
	start()
	again := nodeStatusSnapshot(t, client)
	if again != post {
		t.Fatalf("recovery is not deterministic:\n first  %+v\n second %+v", post, again)
	}

	// The recovered daemon stays live on the compacted store.
	churn(2)
	final := nodeStatusSnapshot(t, client)
	if final.head <= again.head {
		t.Fatalf("no progress after recovery: head %d -> %d", again.head, final.head)
	}
	kill()
}

// smokeSnapshot is the externally observable durable identity of the
// deployment: chain head (number + hash) and the MST state root.
type smokeSnapshot struct {
	head      uint64
	headHash  string
	stateRoot string
	cum       uint64
}

func nodeStatusSnapshot(t *testing.T, client *rpc.Client) smokeSnapshot {
	t.Helper()
	ctx := context.Background()
	ns, err := client.NodeStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	head, err := client.Head(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := client.BlockHash(ctx, head)
	if err != nil {
		t.Fatal(err)
	}
	chans, err := client.Channels(ctx, "car")
	if err != nil || len(chans) != 1 {
		t.Fatalf("car channels: %v %v", chans, err)
	}
	return smokeSnapshot{head: head, headHash: hash, stateRoot: ns.StateRoot, cum: chans[0].Cumulative}
}

package tinyevm

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"tinyevm/internal/chain"
	"tinyevm/internal/cluster"
	"tinyevm/internal/core"
	"tinyevm/internal/engine"
	"tinyevm/internal/protocol"
	"tinyevm/internal/store"
	"tinyevm/internal/types"
)

// Service errors.
var (
	// ErrServiceClosed is returned by every operation after Close.
	ErrServiceClosed = errors.New("tinyevm: service closed")
	// ErrUnknownNode is returned when a node name is not registered.
	ErrUnknownNode = errors.New("tinyevm: unknown node")
	// ErrIncompleteClose is returned by Close when the counterparty did
	// not produce a valid countersignature.
	ErrIncompleteClose = errors.New("tinyevm: close handshake incomplete")
	// ErrDeliveryFailed is returned (wrapping the counterparty's
	// rejection) when an operation was applied on the local node but the
	// automatically dispatched wire message failed on the remote side:
	// the local channel state HAS advanced. errors.Is matches both
	// ErrDeliveryFailed and the underlying cause; the operation's result
	// (e.g. the signed payment) is returned alongside the error.
	ErrDeliveryFailed = errors.New("tinyevm: delivered locally, rejected by counterparty")
)

// Option configures a Service (functional options).
type Option func(*serviceConfig)

type serviceConfig struct {
	core          core.Config
	engineWorkers int
	shards        int
	clock         func() time.Time
	kv            store.KVStore
	dataDir       string
	backend       string
	ckptInterval  uint64
	mstCommit     bool
	cluster       *ClusterConfig
}

// WithChallengePeriod sets the on-chain template's challenge window in
// blocks.
func WithChallengePeriod(blocks uint64) Option {
	return func(c *serviceConfig) { c.core.ChallengePeriod = blocks }
}

// WithRadioSeed fixes the TSCH loss process for reproducible runs.
func WithRadioSeed(seed int64) Option {
	return func(c *serviceConfig) { c.core.RadioSeed = seed }
}

// WithRadioLossRate injects independent per-frame radio loss.
func WithRadioLossRate(rate float64) Option {
	return func(c *serviceConfig) { c.core.RadioLossRate = rate }
}

// WithFunds sets the initial chain balances of the provider and of each
// subsequently added node.
func WithFunds(provider, node uint64) Option {
	return func(c *serviceConfig) {
		c.core.ProviderFunds = provider
		c.core.NodeFunds = node
	}
}

// WithEngineWorkers routes the service's on-chain block production
// through the parallel execution engine with n workers. n <= 1 keeps the
// serial producer. Template operations (native-contract calls) always
// execute serially inside the engine; the workers parallelize ordinary
// EVM traffic batched into the same blocks.
func WithEngineWorkers(n int) Option {
	return func(c *serviceConfig) { c.engineWorkers = n }
}

// WithFusion enables or disables tier-1 superinstruction execution on
// the service's chain (default on). Results are byte-identical either
// way; the knob exists for debugging and benchmark comparisons.
func WithFusion(on bool) Option {
	return func(c *serviceConfig) { c.core.DisableFusion = !on }
}

// WithShards sets the number of lock stripes for the pairwise hot path
// (DefaultShards when unset). n <= 1 collapses the service to a single
// stripe — every operation serializes, the pre-sharding behavior. A
// non-zero radio loss rate forces one stripe regardless, because the
// loss process draws from one seeded RNG whose consumption order must
// match the journal.
func WithShards(n int) Option {
	return func(c *serviceConfig) { c.shards = n }
}

// WithClock sets the wall-clock source used to stamp events — tests
// inject a deterministic clock. nil restores time.Now.
func WithClock(now func() time.Time) Option {
	return func(c *serviceConfig) { c.clock = now }
}

// WithConfig replaces the whole core configuration (escape hatch for
// callers migrating from the deprecated NewSystem façade).
func WithConfig(cfg Config) Option {
	return func(c *serviceConfig) { c.core = cfg }
}

// WithStore makes the deployment durable over the given key-value
// store: sealed blocks and per-block state deltas are committed at
// every seal, every state-changing operation is journaled, and
// NewService recovers the previous deployment by replaying the journal
// (see the package documentation in oplog.go for the replay contract).
// The caller owns kv and closes it after the service.
//
// The store must be dedicated to one deployment (same provider name and
// options); recovery fails, rather than forking history, when the
// replayed chain diverges from the persisted blocks.
func WithStore(kv store.KVStore) Option {
	return func(c *serviceConfig) { c.kv = kv }
}

// WithDataDir is WithStore over a service-owned store under dir
// (created as needed): the write-ahead log at <dir>/tinyevm.wal by
// default, or the embedded disk backend under <dir>/store with
// WithStoreBackend("disk"). The service closes it on Close. WithStore,
// when also given, wins.
func WithDataDir(dir string) Option {
	return func(c *serviceConfig) { c.dataDir = dir }
}

// WithStoreBackend selects the WithDataDir storage engine: "wal" (the
// default single-file write-ahead log, rewritten on open) or "disk"
// (the embedded memtable + sorted-segment store with background
// compaction; see internal/store/disk). It has no effect with an
// explicit WithStore.
func WithStoreBackend(kind string) Option {
	return func(c *serviceConfig) { c.backend = kind }
}

// WithCheckpointInterval makes a durable deployment write a full state
// checkpoint every n sealed blocks: recovery then restores the latest
// checkpoint and replays only the operation tail journaled after it,
// bounding restart time by checkpoint distance instead of deployment
// lifetime. The folded-in prefix of the operation log is pruned
// atomically with each checkpoint. 0 (the default) disables
// checkpointing — recovery replays the whole log.
//
// Checkpoints are automatically disabled under a non-zero radio loss
// rate (the loss process draws from one seeded RNG whose consumption
// order a snapshot cannot restore) and under cluster mode.
func WithCheckpointInterval(n uint64) Option {
	return func(c *serviceConfig) { c.ckptInterval = n }
}

// WithMSTCommitment switches the chain's per-block state commitment
// from the legacy O(n) full-state digest to an incremental
// Merkle-sum-tree root updated in O(log n) per touched account. Blocks
// hash identically either way; only the persisted state commitment
// differs, and a store written in one mode refuses to open in the
// other. The MST mode additionally serves light-client account proofs
// (Service.StateProof, tinyevm_stateProof).
func WithMSTCommitment(on bool) Option {
	return func(c *serviceConfig) { c.mstCommit = on }
}

// Service is the concurrency-safe façade over a TinyEVM deployment.
// Every operation takes a context.Context and may be called from many
// goroutines.
//
// Concurrency model: service state is lock-striped by device address.
// Channel operations between distinct node pairs (open, pay, claim,
// close — including all payment validation and signature checking) run
// concurrently under their pair's shard locks; only operations that
// touch global state (AddNode, on-chain transactions, block production,
// multi-hop routes) take the exclusive service lock. The intent log has
// its own narrow sequencer lock, taken after the shard locks, so the
// journal order is always a valid linearization of the concurrent
// execution — replaying it single-threaded reproduces the deployment
// byte-for-byte. See shard.go for the lock-ordering rules.
//
// Unlike the deprecated lockstep façade (NewSystem), the service
// dispatches incoming wire messages automatically: a Pay on one node is
// verified, registered and observable on the counterparty — via
// Subscribe event streams — without any manual ReceivePayment call.
type Service struct {
	// mu is the global service lock. Sharded (pairwise) operations hold
	// it in read mode for their whole duration; global operations —
	// AddNode, on-chain ops, MineBlock, routes, Close, snapshots — hold
	// it in write mode, which excludes every sharded operation.
	mu  sync.RWMutex
	sys *core.System
	eng *engine.Engine

	// shards stripe the pairwise hot path by device address; see
	// shard.go. logMu is the sequencer lock: it guards opSeq and the
	// intent-log append, and is always acquired after the shard locks.
	shards []serviceShard
	logMu  sync.Mutex

	clock func() time.Time

	nodes  map[string]*ServiceNode
	byAddr map[Address]*ServiceNode
	order  []*ServiceNode

	subMu  sync.Mutex
	subs   map[*subscription]struct{}
	closed bool

	// fraudSeen counts template fraud entries already reported per
	// address, so each new entry emits exactly one dispute event.
	fraudSeen map[Address]int

	// ops is the operation-log store (nil without WithStore); opSeq is
	// the next journal sequence number. ownedKV is closed by Close when
	// the service opened the store itself (WithDataDir).
	ops     store.KVStore
	opSeq   uint64
	ownedKV store.KVStore

	// Checkpoint bookkeeping (checkpoint.go): the configured cadence,
	// the height/sequence of the last written checkpoint, and the op
	// sequence below which the journal has been pruned.
	ckptInterval   uint64
	lastCkptHeight uint64
	lastCkptSeq    uint64
	opPruned       uint64

	// sensorRegs journals the fixed-value sensor registrations so
	// checkpoints can re-install them (the handlers are closures and
	// cannot be snapshotted). opRegisterSensor is a sharded op, so the
	// slice has its own lock.
	sensorMu   sync.Mutex
	sensorRegs []ckptSensor

	// recovery describes what NewService recovered; immutable afterward.
	recovery RecoveryInfo

	// cluster is the multi-node sidechain binding (nil without
	// WithCluster); see cluster_service.go.
	cluster *cluster.Node
}

// NewService creates a TinyEVM deployment whose provider node (the
// payment receiver owning the on-chain template) has the given name.
//
// With WithStore or WithDataDir, NewService also RECOVERS: the journaled
// operation log found in the store is replayed against the fresh
// deployment, reconstructing nodes, channels, balances and sealed
// blocks exactly as they were — every replayed block is verified
// byte-for-byte against the persisted chain records, and a mismatch
// fails construction instead of forking history.
func NewService(providerName string, opts ...Option) (*Service, *ServiceNode, error) {
	cfg := serviceConfig{core: core.DefaultConfig(), clock: time.Now}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.clock == nil {
		cfg.clock = time.Now
	}

	sys, provider, err := core.NewSystem(cfg.core, providerName)
	if err != nil {
		return nil, nil, err
	}
	if cfg.mstCommit {
		// Before any store attaches: the first persisted seal must
		// already carry the MST commitment.
		sys.Chain.EnableMSTCommitment()
	}
	if cfg.core.RadioLossRate != 0 || cfg.cluster != nil {
		// A checkpoint cannot restore the radio RNG's consumption
		// position, and cluster peers replicate blocks, not snapshots.
		cfg.ckptInterval = 0
	}
	s := &Service{
		sys:          sys,
		clock:        cfg.clock,
		nodes:        make(map[string]*ServiceNode),
		byAddr:       make(map[Address]*ServiceNode),
		subs:         make(map[*subscription]struct{}),
		fraudSeen:    make(map[Address]int),
		shards:       make([]serviceShard, shardCount(cfg)),
		ckptInterval: cfg.ckptInterval,
	}
	if cfg.engineWorkers > 1 {
		s.eng = engine.New(sys.Chain, engine.Options{Workers: cfg.engineWorkers})
	}
	sys.Chain.OnSeal(func(b *chain.Block, _ []*chain.Receipt) {
		s.broadcast(Event{Type: EventBlockSealed, Block: b.Number})
	})
	pn := s.adopt(provider)

	kv := cfg.kv
	if kv == nil && cfg.dataDir != "" {
		if kv, err = openDataDir(cfg.dataDir, cfg.backend); err != nil {
			return nil, nil, err
		}
		s.ownedKV = kv
	}
	if kv != nil {
		start := time.Now()
		s.ops = kv
		commitMode := ""
		if cfg.mstCommit {
			commitMode = "mst"
		}
		if err := s.checkMeta(serviceMeta{
			Provider:        providerName,
			ChallengePeriod: cfg.core.ChallengePeriod,
			RadioSeed:       cfg.core.RadioSeed,
			RadioLossRate:   cfg.core.RadioLossRate,
			StateCommitment: commitMode,
		}); err != nil {
			s.closeOwnedStore()
			return nil, nil, err
		}
		if err := sys.Chain.AttachStore(store.Prefixed(kv, "chain/")); err != nil {
			s.closeOwnedStore()
			return nil, nil, err
		}
		// Recovery: restore the latest checkpoint when one exists, then
		// replay the journaled operation tail on top of it.
		ck, hasCkpt, err := s.loadCheckpoint()
		if err != nil {
			s.closeOwnedStore()
			return nil, nil, err
		}
		if hasCkpt {
			if err := s.restoreFromCheckpoint(ck); err != nil {
				s.closeOwnedStore()
				return nil, nil, err
			}
			s.recovery.CheckpointHeight = ck.Height
			s.recovery.CheckpointSeq = ck.Seq
		}
		replayed, err := s.replayOps()
		if err != nil {
			s.closeOwnedStore()
			return nil, nil, err
		}
		s.recovery.ReplayedOps = replayed
		s.recovery.Recovered = hasCkpt || replayed > 0
		s.recovery.Duration = time.Since(start)
		// Replay ran with synchronous persistence (every seal verified
		// against the store in lockstep); live mode pipelines WAL commits
		// so block N+1 can execute while block N persists.
		sys.Chain.EnablePipeline(chain.DefaultPipelineDepth)
	}
	if cfg.cluster != nil {
		if err := s.setupCluster(&cfg); err != nil {
			return nil, nil, err
		}
	}
	return s, pn, nil
}

func (s *Service) closeOwnedStore() {
	if s.ownedKV != nil {
		s.ownedKV.Close()
	}
}

func (s *Service) adopt(n *core.Node) *ServiceNode {
	sn := &ServiceNode{svc: s, n: n}
	s.nodes[n.Name()] = sn
	s.byAddr[n.Address()] = sn
	s.order = append(s.order, sn)
	return sn
}

// do runs fn under the exclusive service lock — the path for global
// operations and consistent snapshots — honouring context cancellation
// and service shutdown at the boundary. The pairwise hot path does not
// come through here; see runSharded in shard.go.
func (s *Service) do(ctx context.Context, fn func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.isClosed() {
		return ErrServiceClosed
	}
	return fn()
}

func (s *Service) isClosed() bool {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	return s.closed
}

// Close shuts the service down: every Subscribe stream is closed and
// subsequent operations fail with ErrServiceClosed. Close is idempotent.
func (s *Service) Close() error {
	s.subMu.Lock()
	if s.closed {
		s.subMu.Unlock()
		return nil
	}
	s.closed = true
	subs := make([]*subscription, 0, len(s.subs))
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	s.subMu.Unlock()
	for _, sub := range subs {
		sub.cancel()
	}
	// The cluster's goroutines acquire s.mu; stop them before taking it.
	if s.cluster != nil {
		s.cluster.Close() //nolint:errcheck // shutdown path
	}
	// Serialize against in-flight operations (sharded ops hold the read
	// lock for their whole duration), drain the persistence pipeline,
	// then release a store the service owns.
	s.mu.Lock()
	s.sys.Chain.ClosePipeline()
	s.closeOwnedStore()
	s.mu.Unlock()
	return nil
}

// AddNode creates, funds and joins a new node.
func (s *Service) AddNode(ctx context.Context, name string) (*ServiceNode, error) {
	res, err := s.run(ctx, &opRecord{Op: opAddNode, Name: name})
	return res.node, err
}

// Node returns a registered node by name. Name lookups only contend
// with node registration, never with channel traffic.
func (s *Service) Node(name string) (*ServiceNode, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sn, ok := s.nodes[name]
	return sn, ok
}

// Nodes returns every node in join order.
func (s *Service) Nodes() []*ServiceNode {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*ServiceNode, len(s.order))
	copy(out, s.order)
	return out
}

// Provider returns the provider node (the template owner).
func (s *Service) Provider() *ServiceNode {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byAddr[s.sys.Provider()]
}

// BalanceOf returns an address's main-chain balance.
func (s *Service) BalanceOf(ctx context.Context, addr Address) (uint64, error) {
	var bal uint64
	err := s.do(ctx, func() error {
		bal = s.sys.Chain.BalanceOf(addr)
		return nil
	})
	return bal, err
}

// HeadBlock returns the current main-chain head number.
func (s *Service) HeadBlock(ctx context.Context) (uint64, error) {
	var n uint64
	err := s.do(ctx, func() error {
		n = s.sys.Chain.Head().Number
		return nil
	})
	return n, err
}

// MineBlock produces one block from any pending transactions, through
// the parallel engine when WithEngineWorkers configured one.
func (s *Service) MineBlock(ctx context.Context) error {
	_, err := s.run(ctx, &opRecord{Op: opMineBlock})
	return err
}

// RunChallengePeriod advances the chain past the active exit deadline.
func (s *Service) RunChallengePeriod(ctx context.Context) error {
	_, err := s.run(ctx, &opRecord{Op: opRunChallenge})
	return err
}

// FraudChannels returns the channel ids the template caught addr
// cheating on.
func (s *Service) FraudChannels(ctx context.Context, addr Address) ([]uint64, error) {
	var out []uint64
	err := s.do(ctx, func() error {
		out = s.sys.Template.FraudChannels(addr)
		return nil
	})
	return out, err
}

// TemplateSettled reports whether the on-chain template has dissolved.
func (s *Service) TemplateSettled(ctx context.Context) (bool, error) {
	var settled bool
	err := s.do(ctx, func() error {
		settled = s.sys.Template.Settled()
		return nil
	})
	return settled, err
}

// System exposes the underlying deployment for measurement and
// inspection. It is NOT safe to mutate concurrently with service
// operations; quiesce the service first.
func (s *Service) System() *System { return s.sys }

// RecoveryInfo describes what NewService reconstructed from a durable
// store: whether anything was recovered at all, the checkpoint it
// started from (zero values when none existed), how many journaled
// operations replayed on top, and how long the whole recovery took.
type RecoveryInfo struct {
	// Recovered reports whether the store held prior history.
	Recovered bool
	// CheckpointHeight and CheckpointSeq identify the restored
	// checkpoint (both zero when recovery replayed the full log).
	CheckpointHeight uint64
	CheckpointSeq    uint64
	// ReplayedOps is the length of the journal tail replayed after the
	// checkpoint.
	ReplayedOps int
	// Duration is the wall-clock recovery time inside NewService.
	Duration time.Duration
}

// RecoveryInfo returns what this service recovered at construction.
// It is immutable after NewService returns.
func (s *Service) RecoveryInfo() RecoveryInfo { return s.recovery }

// StoreStatus describes the service's durable store: the storage
// engine under the journal and the checkpoint position. Surfaced over
// RPC as tinyevm_storeStatus.
type StoreStatus struct {
	// Kind names the backend ("mem", "wal", "disk", or "custom" for a
	// caller-provided store that reports no stats).
	Kind string
	// Segments / SegmentBytes / MemtableBytes / Flushes / Compactions
	// mirror store.Stats for the backend.
	Segments      int
	SegmentBytes  int64
	MemtableBytes int64
	Flushes       uint64
	Compactions   uint64
	// CheckpointInterval is the configured cadence (0: disabled);
	// CheckpointHeight and CheckpointSeq locate the latest checkpoint
	// written or restored by this service.
	CheckpointInterval uint64
	CheckpointHeight   uint64
	CheckpointSeq      uint64
}

// StoreStatus reports the durable store's backend and checkpoint
// position. ok is false when the service runs without a store.
func (s *Service) StoreStatus(ctx context.Context) (StoreStatus, bool, error) {
	var (
		st StoreStatus
		ok bool
	)
	err := s.do(ctx, func() error {
		if s.ops == nil {
			return nil
		}
		ok = true
		st.CheckpointInterval = s.ckptInterval
		st.CheckpointHeight = s.lastCkptHeight
		st.CheckpointSeq = s.lastCkptSeq
		if sp, has := s.ops.(store.StatsProvider); has {
			stats := sp.Stats()
			st.Kind = stats.Kind
			st.Segments = stats.Segments
			st.SegmentBytes = stats.SegmentBytes
			st.MemtableBytes = stats.MemtableBytes
			st.Flushes = stats.Flushes
			st.Compactions = stats.Compactions
		} else {
			st.Kind = "custom"
		}
		return nil
	})
	return st, ok, err
}

// StateCommitment is the chain's current authenticated state root
// under the MST commitment mode (WithMSTCommitment).
type StateCommitment struct {
	// Root is the Merkle-sum-tree root hash over all accounts.
	Root Hash
	// Sum is the tree's sum total (balances, low 64 bits, wrapping).
	Sum uint64
	// Commitment is the folded digest persisted in block records.
	Commitment Hash
	// Height is the chain head the root was read at.
	Height uint64
}

// StateCommitment returns the current MST state root. It fails with
// chain.ErrNoMSTCommitment unless WithMSTCommitment is enabled.
func (s *Service) StateCommitment(ctx context.Context) (StateCommitment, error) {
	var out StateCommitment
	err := s.do(ctx, func() error {
		root, err := s.sys.Chain.StateRoot()
		if err != nil {
			return err
		}
		out = StateCommitment{
			Root:       root.Hash,
			Sum:        root.Sum,
			Commitment: chain.CommitmentDigest(root),
			Height:     s.sys.Chain.Head().Number,
		}
		return nil
	})
	return out, err
}

// StateProof builds a light-client-verifiable membership proof that
// addr's account is committed under the chain head's state commitment.
// Requires WithMSTCommitment; verify with chain.VerifyAccountProof (or
// client-side via rpc.Client.VerifyStateProof, which also re-digests
// the account preimage).
func (s *Service) StateProof(ctx context.Context, addr Address) (*AccountProof, error) {
	var p *AccountProof
	err := s.do(ctx, func() error {
		var err error
		p, err = s.sys.Chain.StateProof(addr)
		return err
	})
	return p, err
}

// txSender returns the block producer on-chain operations go through.
func (s *Service) txSender() protocol.TxSender {
	if s.cluster != nil {
		return &clusterTxSender{s: s}
	}
	if s.eng != nil {
		return &engineTxSender{c: s.sys.Chain, e: s.eng}
	}
	return s.sys.Chain
}

// engineTxSender adapts the parallel engine to protocol.TxSender:
// submit, mine one block, return the submitted transaction's receipt.
type engineTxSender struct {
	c *chain.Chain
	e *engine.Engine
}

func (es *engineTxSender) NonceOf(a types.Address) uint64 { return es.c.NonceOf(a) }

func (es *engineTxSender) SendTransaction(tx *chain.Transaction) (*chain.Receipt, error) {
	if err := es.e.Submit(tx); err != nil {
		return nil, err
	}
	want := tx.Hash()
	for _, r := range es.e.MineBlock() {
		if r.TxHash == want {
			return r, nil
		}
	}
	return nil, fmt.Errorf("tinyevm: engine dropped transaction %s", want)
}

// RouteStep names one forwarding hop of a multi-hop payment: the node
// pays the next hop over its local channel handle.
type RouteStep struct {
	Node    string
	Channel uint64
}

// RoutePayment executes an atomic multi-hop hash-locked payment along
// the route, ending at the named receiver. Intermediaries earn hopFee
// each. The whole exchange (forward lock pass, backward claim pass)
// completes before RoutePayment returns; each hop's payee sees
// payment-received and each payer claim-settled on their streams.
func (s *Service) RoutePayment(ctx context.Context, steps []RouteStep, receiver string, amount, hopFee uint64) (Hash, error) {
	// The secret is the route's only nondeterministic input: draw it
	// here and journal it inside the record so recovery replays the
	// identical exchange.
	secret, _, err := protocol.NewSecret()
	if err != nil {
		return Hash{}, err
	}
	rec := &opRecord{
		Op: opRoutePayment, Receiver: receiver,
		Amount: amount, Fee: hopFee, Secret: encodeSecret(secret),
	}
	for _, st := range steps {
		rec.Steps = append(rec.Steps, opStep{Node: st.Node, Channel: st.Channel})
	}
	res, err := s.run(ctx, rec)
	return res.lock, err
}

// --- event plumbing ----------------------------------------------------

// subscription is one Subscribe stream: an unbounded queue decoupling
// the (locked) event producers from an arbitrarily slow consumer.
type subscription struct {
	node string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Event
	closed bool

	done chan struct{}
	once sync.Once
	out  chan Event
}

func newSubscription(node string) *subscription {
	sub := &subscription{
		node: node,
		done: make(chan struct{}),
		out:  make(chan Event, 16),
	}
	sub.cond = sync.NewCond(&sub.mu)
	go sub.pump()
	return sub
}

func (sub *subscription) push(e Event) {
	sub.mu.Lock()
	if !sub.closed {
		sub.queue = append(sub.queue, e)
		sub.cond.Signal()
	}
	sub.mu.Unlock()
}

func (sub *subscription) cancel() {
	sub.once.Do(func() {
		close(sub.done)
		sub.mu.Lock()
		sub.closed = true
		sub.cond.Signal()
		sub.mu.Unlock()
	})
}

func (sub *subscription) pump() {
	for {
		sub.mu.Lock()
		for len(sub.queue) == 0 && !sub.closed {
			sub.cond.Wait()
		}
		if len(sub.queue) == 0 && sub.closed {
			sub.mu.Unlock()
			close(sub.out)
			return
		}
		e := sub.queue[0]
		sub.queue = sub.queue[1:]
		sub.mu.Unlock()
		select {
		case sub.out <- e:
		case <-sub.done:
			close(sub.out)
			return
		}
	}
}

// subscribe registers a stream bound to node (or "" for every event).
func (s *Service) subscribe(ctx context.Context, node string) <-chan Event {
	sub := newSubscription(node)
	s.subMu.Lock()
	if s.closed {
		s.subMu.Unlock()
		sub.cancel()
		return sub.out
	}
	s.subs[sub] = struct{}{}
	s.subMu.Unlock()
	go func() {
		select {
		case <-ctx.Done():
			sub.cancel()
		case <-sub.done:
		}
		s.subMu.Lock()
		delete(s.subs, sub)
		s.subMu.Unlock()
	}()
	return sub.out
}

// emit delivers an event to the named node's streams; broadcast events
// (Node == "") reach every stream.
func (s *Service) emit(e Event) {
	e.Time = s.clock()
	s.subMu.Lock()
	for sub := range s.subs {
		if e.Node == "" || sub.node == "" || sub.node == e.Node {
			sub.push(e)
		}
	}
	s.subMu.Unlock()
}

// broadcast emits a system-wide event.
func (s *Service) broadcast(e Event) {
	e.Node = ""
	s.emit(e)
}

// --- wire dispatch -----------------------------------------------------

// firstErr reduces dispatch's error list to its first element (the
// service surfaces one failure per operation; the rest arrive as error
// events on the streams).
func firstErr(errs []error) error {
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// deliveryErr marks a dispatch failure that happened AFTER the local
// side of the operation succeeded, so callers can distinguish "never
// happened" from "applied locally, rejected remotely". Both
// ErrDeliveryFailed and the cause match through errors.Is.
func deliveryErr(errs []error) error {
	if len(errs) > 0 {
		return fmt.Errorf("%w: %w", ErrDeliveryFailed, errs[0])
	}
	return nil
}

// dispatch drains the radio inboxes of the nodes in scope (nil: every
// node), routing each pending message to the matching protocol handler
// and publishing the resulting events. It runs after every
// state-changing operation, while that operation's locks are held, so
// automatic delivery is atomic with the operation that produced the
// messages.
//
// Scoped dispatch is what keeps the sharded hot path correct: an
// operation only ever produces messages for the nodes whose shard locks
// it holds, and every operation fully drains its own messages before
// releasing them — so between operations no inbox anywhere is non-empty
// and draining just the involved pair is exactly equivalent to draining
// the world. Replay computes the same scope from the record and shares
// this code path.
func (s *Service) dispatch(scope []*ServiceNode) []error {
	if scope == nil {
		scope = s.order
	}
	var errs []error
	for progress := true; progress; {
		progress = false
		for _, sn := range scope {
			for sn.n.Radio.Pending() > 0 {
				progress = true
				if err := s.deliverOne(sn); err != nil {
					errs = append(errs, err)
					s.emit(Event{Type: EventError, Node: sn.n.Name(), Err: err})
				}
			}
		}
	}
	return errs
}

// deliverOne pops and handles the oldest pending message on sn.
func (s *Service) deliverOne(sn *ServiceNode) error {
	msg, ok := sn.n.Radio.Peek()
	if !ok {
		return nil
	}
	t, err := protocol.PeekType(msg.Payload)
	if err != nil {
		sn.n.Radio.Receive() // drop the malformed frame
		return err
	}
	p := sn.n.Party
	name := sn.n.Name()

	switch t {
	case protocol.MsgChannelOpen:
		cs, err := p.AcceptChannel()
		if err != nil {
			return err
		}
		s.emit(Event{Type: EventChannelOpened, Node: name, Channel: cs.ID, Peer: cs.Peer, Amount: cs.Deposit})

	case protocol.MsgPayment:
		pay, err := protocol.DecodePayment(msg.Payload)
		if err != nil {
			sn.n.Radio.Receive()
			return err
		}
		if pay.HashLock.IsZero() {
			prev := uint64(0)
			if cs, ok := p.ChannelByWire(pay.Template, pay.ChannelID, msg.From); ok {
				prev = cs.Cumulative
			}
			pay, err = p.ReceivePayment()
			if err != nil {
				return err
			}
			cs, _ := p.ChannelOf(pay)
			s.emit(Event{
				Type: EventPaymentReceived, Node: name,
				Channel: cs.ID, Peer: cs.Peer,
				Seq: pay.Seq, Amount: pay.Cumulative - prev,
				Payment: pay,
			})
		} else {
			pay, err = p.ReceiveConditional()
			if err != nil {
				return err
			}
			cs, _ := p.ChannelOf(pay)
			s.emit(Event{
				Type: EventPaymentReceived, Node: name,
				Channel: cs.ID, Peer: cs.Peer,
				Seq: pay.Seq, Payment: pay,
			})
		}

	case protocol.MsgCloseRequest, protocol.MsgCloseAck:
		handle := p.AcceptClose // countersign an incoming close
		if t == protocol.MsgCloseAck {
			handle = p.FinishClose // record the ack on the initiator
		}
		fs, err := handle()
		if err != nil {
			return err
		}
		cs, _ := p.ChannelByOpener(fs.Template, fs.ChannelID, fs.Sender)
		s.emit(Event{
			Type: EventChannelClosed, Node: name,
			Channel: cs.ID, Peer: cs.Peer,
			Seq: fs.Seq, Amount: fs.Cumulative, Final: fs,
		})

	case protocol.MsgHTLCClaim:
		pay, err := p.AcceptClaim()
		if err != nil {
			return err
		}
		cs, _ := p.ChannelOf(pay)
		s.emit(Event{
			Type: EventClaimSettled, Node: name,
			Channel: cs.ID, Peer: cs.Peer,
			Seq: pay.Seq, Payment: pay,
		})

	case protocol.MsgSensorData:
		data, err := p.ReceiveSensorData()
		if err != nil {
			return err
		}
		s.emit(Event{Type: EventSensorData, Node: name, Peer: data.From, Readings: data.Readings})

	default:
		sn.n.Radio.Receive()
		return fmt.Errorf("tinyevm: undispatchable message type %d", t)
	}
	return nil
}

// checkDisputes emits a dispute event for every fraud entry the template
// recorded since the last check.
func (s *Service) checkDisputes() {
	for addr := range s.byAddr {
		frauds := s.sys.Template.FraudChannels(addr)
		for _, ch := range frauds[s.fraudSeen[addr]:] {
			s.broadcast(Event{
				Type: EventDispute, Peer: addr, Channel: ch,
				Block: s.sys.Chain.Head().Number,
			})
		}
		s.fraudSeen[addr] = len(frauds)
	}
}

// --- node façade -------------------------------------------------------

// ServiceNode is one IoT node addressed through the service. All methods
// are safe for concurrent use.
type ServiceNode struct {
	svc *Service
	n   *core.Node
}

// Name returns the node's name.
func (sn *ServiceNode) Name() string { return sn.n.Name() }

// Address returns the node's device address.
func (sn *ServiceNode) Address() Address { return sn.n.Address() }

// Unwrap returns the underlying lockstep-façade node. It is NOT safe to
// drive concurrently with service operations; quiesce the service first
// (measurement and reporting escape hatch).
func (sn *ServiceNode) Unwrap() *Node { return sn.n }

// Subscribe returns this node's event stream: channel-opened,
// payment-received, channel-closed, claim-settled, sensor-data and
// error events observed on this node, plus broadcast dispute and
// block-sealed events. The stream closes when ctx is cancelled or the
// service closes. Delivery is unbounded — a slow consumer never blocks
// the protocol.
func (sn *ServiceNode) Subscribe(ctx context.Context) <-chan Event {
	return sn.svc.subscribe(ctx, sn.n.Name())
}

// RegisterSensor installs a sensor/actuator handler on the node's bus.
// Go handlers cannot be journaled: on a durable deployment, prefer
// RegisterSensorValue (replayed on recovery) or re-register handlers
// after NewService returns.
func (sn *ServiceNode) RegisterSensor(id uint64, fn SensorFunc) {
	sn.n.RegisterSensor(id, fn) // the bus is internally synchronized
}

// RegisterSensorValue installs a fixed-value sensor on the node's bus.
// Unlike RegisterSensor, the registration is journaled, so recovery
// restores it before replaying the channel operations whose contract
// constructors read the sensor — this is the registration path the RPC
// gateway uses.
func (sn *ServiceNode) RegisterSensorValue(ctx context.Context, id, value uint64) error {
	_, err := sn.svc.run(ctx, &opRecord{
		Op: opRegisterSensor, Node: sn.n.Name(), SensorID: id, Value: value,
	})
	return err
}

// OpenChannel executes the local template to create an off-chain payment
// channel funded with deposit and announces it to the peer, which
// replicates it immediately (the peer's stream sees channel-opened).
func (sn *ServiceNode) OpenChannel(ctx context.Context, peer Address, deposit, sensorParam uint64) (ChannelState, error) {
	res, err := sn.svc.run(ctx, &opRecord{
		Op: opOpenChannel, Node: sn.n.Name(), Peer: peer.Hex(),
		Deposit: deposit, SensorParam: sensorParam,
	})
	return res.channel, err
}

// Pay sends an off-chain payment over the channel. The counterparty
// verifies and registers it before Pay returns; its stream sees
// payment-received.
func (sn *ServiceNode) Pay(ctx context.Context, channelID, amount uint64) (*Payment, error) {
	res, err := sn.svc.run(ctx, &opRecord{
		Op: opPay, Node: sn.n.Name(), Channel: channelID, Amount: amount,
	})
	return res.pay, err
}

// PayConditional sends a hash-locked payment; the peer holds it pending
// until Claim reveals the preimage.
func (sn *ServiceNode) PayConditional(ctx context.Context, channelID, amount uint64, lock Hash) (*Payment, error) {
	res, err := sn.svc.run(ctx, &opRecord{
		Op: opPayConditional, Node: sn.n.Name(), Channel: channelID,
		Amount: amount, Lock: lock.Hex(),
	})
	return res.pay, err
}

// Claim resolves a pending inbound conditional payment by revealing the
// preimage; the payer finalizes it in the same call (claim-settled).
func (sn *ServiceNode) Claim(ctx context.Context, channelID uint64, secret Secret) (*Payment, error) {
	res, err := sn.svc.run(ctx, &opRecord{
		Op: opClaim, Node: sn.n.Name(), Channel: channelID, Secret: encodeSecret(secret),
	})
	return res.pay, err
}

// Close runs the full cooperative close handshake: the final state
// travels to the peer, is countersigned, and the ack is processed — both
// parties' streams see channel-closed. The returned state carries both
// signatures.
func (sn *ServiceNode) Close(ctx context.Context, channelID uint64) (*FinalState, error) {
	res, err := sn.svc.run(ctx, &opRecord{Op: opClose, Node: sn.n.Name(), Channel: channelID})
	return res.fs, err
}

// Reopen clears a countersigned checkpoint on this side so payments can
// continue (both parties must reopen).
func (sn *ServiceNode) Reopen(ctx context.Context, channelID uint64) error {
	_, err := sn.svc.run(ctx, &opRecord{Op: opReopen, Node: sn.n.Name(), Channel: channelID})
	return err
}

// Channel returns a snapshot of a channel's local state.
func (sn *ServiceNode) Channel(ctx context.Context, channelID uint64) (ChannelState, bool, error) {
	var (
		out ChannelState
		ok  bool
	)
	err := sn.svc.do(ctx, func() error {
		cs, found := sn.n.Channel(channelID)
		if found {
			out, ok = *cs, true
		}
		return nil
	})
	return out, ok, err
}

// Channels returns snapshots of every channel on this node.
func (sn *ServiceNode) Channels(ctx context.Context) ([]ChannelState, error) {
	var out []ChannelState
	err := sn.svc.do(ctx, func() error {
		for _, cs := range sn.n.ChannelList() {
			out = append(out, *cs)
		}
		return nil
	})
	return out, err
}

// SendSensorData reads the given sensors and pushes the readings to the
// peer, whose stream sees sensor-data.
func (sn *ServiceNode) SendSensorData(ctx context.Context, peer Address, sensorIDs ...uint64) (*SensorData, error) {
	rec := &opRecord{Op: opSendSensorData, Node: sn.n.Name(), Peer: peer.Hex()}
	// Sensor values are nondeterministic inputs: read them under the
	// shard locks, before journaling, so recovery replays the exact
	// frames without needing the (non-persistable) Go handlers.
	res, err := sn.svc.runShardedPrepared(ctx, rec, func() error {
		for _, id := range sensorIDs {
			v, err := sn.n.Dev.Sensors.Sense(id, 0)
			if err != nil {
				return fmt.Errorf("tinyevm: reading sensor 0x%x: %w", id, err)
			}
			rec.Readings = append(rec.Readings, opReading{ID: id, Value: v})
		}
		return nil
	})
	return res.data, err
}

// Deposit locks funds into the on-chain template (phase 1).
func (sn *ServiceNode) Deposit(ctx context.Context, amount uint64) (*Receipt, error) {
	res, err := sn.svc.run(ctx, &opRecord{Op: opDeposit, Node: sn.n.Name(), Amount: amount})
	return res.receipt, err
}

// Commit submits a final state to the on-chain template (phase 3). A
// commit superseding a counterparty's stale commit raises a dispute
// event.
func (sn *ServiceNode) Commit(ctx context.Context, fs *FinalState) (*Receipt, error) {
	res, err := sn.svc.run(ctx, &opRecord{
		Op: opCommit, Node: sn.n.Name(), Final: encodeFinalState(fs),
	})
	return res.receipt, err
}

// Exit starts the on-chain exit / challenge period.
func (sn *ServiceNode) Exit(ctx context.Context) (*Receipt, error) {
	res, err := sn.svc.run(ctx, &opRecord{Op: opExit, Node: sn.n.Name()})
	return res.receipt, err
}

// Settle dissolves the template after the challenge period and
// distributes funds.
func (sn *ServiceNode) Settle(ctx context.Context) (*Receipt, error) {
	res, err := sn.svc.run(ctx, &opRecord{Op: opSettle, Node: sn.n.Name()})
	return res.receipt, err
}

// DeployContract deploys EVM init code on the node's TinyEVM.
func (sn *ServiceNode) DeployContract(ctx context.Context, initCode []byte) (DeployResult, error) {
	res, err := sn.svc.run(ctx, &opRecord{
		Op: opDeployContract, Node: sn.n.Name(), Data: hex.EncodeToString(initCode),
	})
	return res.deploy, err
}

// CallContract executes a deployed contract on the node's TinyEVM.
func (sn *ServiceNode) CallContract(ctx context.Context, addr Address, input []byte, value uint64) (CallResult, error) {
	res, err := sn.svc.run(ctx, &opRecord{
		Op: opCallContract, Node: sn.n.Name(), Addr: addr.Hex(),
		Data: hex.EncodeToString(input), Value: value,
	})
	return res.call, err
}

// EnergyReport returns the node's Table IV style energy report.
func (sn *ServiceNode) EnergyReport(ctx context.Context) (EnergyReport, error) {
	var rep EnergyReport
	err := sn.svc.do(ctx, func() error {
		rep = sn.n.EnergyReport()
		return nil
	})
	return rep, err
}

// VerifyLog checks the node's hash-linked side-chain log.
func (sn *ServiceNode) VerifyLog(ctx context.Context) error {
	return sn.svc.do(ctx, func() error {
		return sn.n.Log.Verify()
	})
}

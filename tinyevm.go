// Package tinyevm is a Go reproduction of "TinyEVM: Off-Chain Smart
// Contracts on Low-Power IoT Devices" (Profentzas, Almgren, Landsiedel —
// ICDCS 2020): a customized Ethereum Virtual Machine for
// resource-constrained IoT nodes plus an off-chain payment-channel
// protocol that settles on a main chain.
//
// The package is a façade over the internal implementation:
//
//   - System wires a simulated main chain, a TSCH low-power radio
//     network and an on-chain template contract together.
//   - Node is one IoT device: a CC2538-class MCU model with Energest
//     energy accounting, a hardware crypto engine, a sensor/actuator bus
//     and a TinyEVM executing standard EVM bytecode extended with the
//     IoT opcode 0x0C.
//   - Channels are opened by executing the factory template ON the
//     device, payments are ECDSA-signed off-chain messages with
//     logical-clock sequence numbers, and final states commit on-chain
//     into a Merkle-sum tree with a challenge period.
//
// A minimal session uses the Service API: operations take a
// context.Context, are safe for concurrent use, and incoming wire
// messages dispatch automatically — the counterparty observes payments
// on its Subscribe stream instead of pumping ReceivePayment:
//
//	svc, lot, _ := tinyevm.NewService("parking-lot")
//	defer svc.Close()
//	car, _ := svc.AddNode(ctx, "smart-car")
//	for _, n := range []*tinyevm.ServiceNode{lot, car} {
//		// channel constructors read this sensor via the IoT opcode
//		n.RegisterSensor(tinyevm.SensorTemperature, temp)
//	}
//	events := lot.Subscribe(ctx)
//	cs, _ := car.OpenChannel(ctx, lot.Address(), 10_000, 0)
//	car.Pay(ctx, cs.ID, 250)   // lot's stream sees payment-received
//	car.Close(ctx, cs.ID)      // full countersign handshake
//	for e := range events { ... }
//
// The JSON-RPC gateway in internal/rpc and the cmd/tinyevm-serve daemon
// expose the same surface over HTTP. See the examples directory for
// complete scenarios and cmd/benchtables for the evaluation harness
// that regenerates the paper's tables and figures.
package tinyevm

import (
	"tinyevm/internal/asm"
	"tinyevm/internal/chain"
	"tinyevm/internal/contracts"
	"tinyevm/internal/core"
	"tinyevm/internal/device"
	"tinyevm/internal/protocol"
	"tinyevm/internal/types"
)

// Core nouns, re-exported from the assembled system.
type (
	// System is a full TinyEVM deployment: chain, radio network,
	// template and nodes.
	System = core.System
	// Config parametrizes NewSystem.
	Config = core.Config
	// Node is one TinyEVM IoT node.
	Node = core.Node
	// Address is a 20-byte Ethereum-style address.
	Address = types.Address
	// Hash is a 32-byte Keccak-256 digest.
	Hash = types.Hash
	// ChannelState is a party's local view of an off-chain channel.
	ChannelState = protocol.ChannelState
	// Payment is one signed off-chain payment message.
	Payment = protocol.Payment
	// FinalState is a doubly-signed channel close.
	FinalState = protocol.FinalState
	// DeployResult describes an on-device contract deployment.
	DeployResult = device.DeployResult
	// CallResult describes an on-device contract call.
	CallResult = device.CallResult
	// EnergyReport is a Table IV style per-state energy breakdown.
	EnergyReport = device.EnergyReport
	// SensorFunc produces a sensor reading for the IoT opcode.
	SensorFunc = device.SensorFunc
	// RouteHop is one forwarding step of a multi-hop routed payment.
	RouteHop = protocol.RouteHop
	// Secret is a hash-lock preimage for conditional payments.
	Secret = protocol.Secret
	// SensorData is a batch of pushed sensor readings.
	SensorData = protocol.SensorData
	// SensorReading is one (sensor id, value) pair.
	SensorReading = protocol.SensorReading
	// Receipt is the result of one executed main-chain transaction.
	Receipt = chain.Receipt
	// AccountProof is a light-client-verifiable statement that one
	// account is committed under a block's MST state commitment
	// (Service.StateProof, WithMSTCommitment).
	AccountProof = chain.AccountProof
)

// Well-known sensor and actuator identifiers for the IoT opcode.
const (
	SensorTemperature = device.SensorTemperature
	SensorOccupancy   = device.SensorOccupancy
	SensorTime        = device.SensorTime
	SensorDistance    = device.SensorDistance
	SensorBattery     = device.SensorBattery
	ActuatorBarrier   = device.ActuatorBarrier
	ActuatorLED       = device.ActuatorLED
)

// NewSystem creates a chain + network + template deployment whose
// provider node (the payment receiver) has the given name. The returned
// façade is the original lockstep API: single-threaded, with manual
// message pumping (AcceptChannel / ReceivePayment / AcceptClose).
//
// Deprecated: use NewService, which is concurrency-safe, takes
// contexts, and dispatches wire messages automatically. NewSystem
// remains as a thin shim for existing callers and measurement
// harnesses that need lockstep control over both parties.
func NewSystem(cfg Config, providerName string) (*System, *Node, error) {
	return core.NewSystem(cfg, providerName)
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// PaymentChannelInitCode builds the paper's Listing 2 contract: a
// payment channel whose constructor stores both parties and a sensor
// reading taken through the IoT opcode.
func PaymentChannelInitCode(sender, receiver Address, sensorID, sensorParam uint64) []byte {
	return core.PaymentChannelInitCode(sender, receiver, sensorID, sensorParam)
}

// TemplateInitCode builds the paper's Listing 1 factory contract.
func TemplateInitCode(receiver Address) []byte {
	return core.TemplateInitCode(receiver)
}

// HexToAddress parses a 0x-prefixed 40-digit hex address.
func HexToAddress(s string) (Address, error) { return types.HexToAddress(s) }

// Assemble translates EVM assembly (mnemonics, labels, auto-sized PUSH,
// the SENSOR IoT opcode) into bytecode.
func Assemble(src string) ([]byte, error) { return asm.Assemble(src) }

// Disassemble renders bytecode one instruction per line.
func Disassemble(code []byte) string { return asm.Disassemble(code) }

// Selector returns the Solidity-compatible 4-byte selector of a function
// signature such as "close(uint256,bytes32,bytes32,uint8)".
func Selector(sig string) [4]byte { return contracts.Selector(sig) }

// Calldata builds selector-prefixed calldata from 32-byte word
// arguments (shorter words are right-aligned).
func Calldata(sig string, words ...[]byte) []byte { return contracts.Calldata(sig, words...) }

// WordToAddress extracts an address from a 32-byte ABI return word.
func WordToAddress(word []byte) Address { return contracts.WordToAddress(word) }

// NewSecret draws a random hash-lock preimage and returns it with its
// lock (keccak-256 of the preimage).
func NewSecret() (Secret, Hash, error) { return protocol.NewSecret() }

// RoutePayment executes an atomic multi-hop payment along route, ending
// at receiver: conditional hash-locked payments propagate forward, the
// receiver's preimage propagates backward claiming each hop.
// Intermediaries earn hopFee each.
func RoutePayment(route []RouteHop, receiver *Node, amount, hopFee uint64) (Hash, error) {
	return protocol.RoutePayment(route, receiver.Party, amount, hopFee)
}

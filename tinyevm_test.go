package tinyevm_test

import (
	"testing"

	"tinyevm"
)

// TestPublicAPIEndToEnd drives the whole system through the public
// façade only: open, pay, close, commit, challenge window, settle.
func TestPublicAPIEndToEnd(t *testing.T) {
	sys, lot, err := tinyevm.NewSystem(tinyevm.DefaultConfig(), "parking-lot")
	if err != nil {
		t.Fatal(err)
	}
	lot.RegisterSensor(tinyevm.SensorOccupancy, func(uint64) (uint64, error) { return 1, nil })
	lot.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) { return 2150, nil })

	car, err := sys.AddNode("smart-car")
	if err != nil {
		t.Fatal(err)
	}
	car.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) { return 2150, nil })

	// Phase 1: the car locks its deposit on-chain.
	if r, err := car.DepositOnChain(sys.Chain, 50_000); err != nil || !r.Status {
		t.Fatalf("deposit: %v %v", err, r)
	}

	// Phase 2: off-chain channel and payments.
	cs, err := car.OpenChannel(lot.Address(), 50_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lot.AcceptChannel(); err != nil {
		t.Fatal(err)
	}
	for _, amt := range []uint64{500, 500, 750} {
		if _, err := car.Pay(cs.ID, amt); err != nil {
			t.Fatal(err)
		}
		if _, err := lot.ReceivePayment(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := car.CloseChannel(cs.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := lot.AcceptClose(); err != nil {
		t.Fatal(err)
	}
	final, err := car.FinishClose()
	if err != nil {
		t.Fatal(err)
	}
	if final.Cumulative != 1750 {
		t.Fatalf("final cumulative %d", final.Cumulative)
	}

	// Phase 3: on-chain commit, exit, challenge window, settle.
	if r, err := lot.CommitOnChain(sys.Chain, final); err != nil || !r.Status {
		t.Fatalf("commit: %v %v", err, r.Err)
	}
	if r, err := car.ExitOnChain(sys.Chain); err != nil || !r.Status {
		t.Fatalf("exit: %v %v", err, r.Err)
	}
	if err := sys.RunChallengePeriod(); err != nil {
		t.Fatal(err)
	}
	if r, err := lot.SettleOnChain(sys.Chain); err != nil || !r.Status {
		t.Fatalf("settle: %v %v", err, r.Err)
	}
	if !sys.Template.Settled() {
		t.Fatal("template not settled")
	}

	// Energy accounting is live through the façade.
	rep := car.EnergyReport()
	if rep.TotalEnergyMJ <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestPublicAPIDeployListing2(t *testing.T) {
	sys, lot, err := tinyevm.NewSystem(tinyevm.DefaultConfig(), "lot")
	if err != nil {
		t.Fatal(err)
	}
	_ = sys
	lot.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) { return 42, nil })

	init := tinyevm.PaymentChannelInitCode(lot.Address(), lot.Address(), tinyevm.SensorTemperature, 0)
	res := lot.DeployContract(init)
	if res.Err != nil {
		t.Fatalf("deploy: %v", res.Err)
	}
	if res.Time <= 0 || res.MaxStackPointer == 0 {
		t.Fatalf("missing measurements: %+v", res)
	}
}

func TestAddNodeNameCollision(t *testing.T) {
	sys, _, err := tinyevm.NewSystem(tinyevm.DefaultConfig(), "p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddNode("n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddNode("n1"); err == nil {
		t.Fatal("duplicate node name accepted")
	}
	if n, ok := sys.Node("n1"); !ok || n.Name() != "n1" {
		t.Fatal("node lookup failed")
	}
}

package tinyevm_test

// BenchmarkRecoveryReplay measures cold-start recovery (NewService over
// an existing journal) and pins the checkpoint contract: with
// checkpoints the restart cost is a function of the journal tail since
// the last checkpoint, NOT of chain length — doubling history leaves
// the checkpointed restart flat while full replay scales linearly.
// The recovery_ms metric feeds benchreport and the CI bench gate.

import (
	"context"
	"testing"

	"tinyevm"
	"tinyevm/internal/store"
)

// buildRecoveryHistory journals blocks sealed deposits (each with an
// off-chain payment in between) into a fresh store and tears the
// service down, leaving a journal a cold start must recover.
func buildRecoveryHistory(b *testing.B, blocks int, interval uint64) (*store.Mem, []tinyevm.Option) {
	b.Helper()
	kv := store.NewMem()
	opts := []tinyevm.Option{tinyevm.WithChallengePeriod(6), tinyevm.WithStore(kv)}
	if interval > 0 {
		opts = append(opts, tinyevm.WithCheckpointInterval(interval))
	}
	svc, hub, err := tinyevm.NewService("hub", opts...)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if err := hub.RegisterSensorValue(ctx, tinyevm.SensorTemperature, 2150); err != nil {
		b.Fatal(err)
	}
	car, err := svc.AddNode(ctx, "car")
	if err != nil {
		b.Fatal(err)
	}
	if err := car.RegisterSensorValue(ctx, tinyevm.SensorTemperature, 2150); err != nil {
		b.Fatal(err)
	}
	ch, err := car.OpenChannel(ctx, hub.Address(), 1_000_000, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		if _, err := car.Pay(ctx, ch.ID, 3); err != nil {
			b.Fatal(err)
		}
		if _, err := car.Deposit(ctx, 10); err != nil { // seals one block
			b.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		b.Fatal(err)
	}
	return kv, opts
}

func BenchmarkRecoveryReplay(b *testing.B) {
	const interval = 8
	for _, cfg := range []struct {
		name   string
		blocks int
		ckpt   uint64
	}{
		{"full-64", 64, 0},
		{"full-128", 128, 0},
		{"checkpointed-64", 64, interval},
		{"checkpointed-128", 128, interval},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			// Recovery only reads the journal (replay verifies persisted
			// blocks instead of rewriting them), so every iteration can
			// cold-start over the same store.
			kv, opts := buildRecoveryHistory(b, cfg.blocks, cfg.ckpt)
			var replayed, ckptHeight uint64
			var recoveryNs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svc, _, err := tinyevm.NewService("hub", opts...)
				if err != nil {
					b.Fatal(err)
				}
				ri := svc.RecoveryInfo()
				if !ri.Recovered {
					b.Fatal("nothing recovered")
				}
				if cfg.ckpt > 0 && ri.CheckpointHeight == 0 {
					b.Fatal("checkpointed run recovered from genesis")
				}
				replayed = uint64(ri.ReplayedOps)
				ckptHeight = ri.CheckpointHeight
				recoveryNs += ri.Duration.Nanoseconds()
				b.StopTimer()
				if err := svc.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(recoveryNs)/float64(b.N)/1e6, "recovery_ms")
			b.ReportMetric(float64(replayed), "replayed-ops")
			b.ReportMetric(float64(ckptHeight), "ckpt-height")
			_ = kv
		})
	}
}

// TestRecoveryReplayBounded is the functional form of the benchmark's
// claim, cheap enough for every test run: with a checkpoint the
// replayed tail stays under one interval's worth of operations however
// long the chain is, while full replay grows with history.
func TestRecoveryReplayBounded(t *testing.T) {
	reopen := func(blocks int, interval uint64) tinyevm.RecoveryInfo {
		kv := store.NewMem()
		opts := []tinyevm.Option{tinyevm.WithChallengePeriod(6), tinyevm.WithStore(kv)}
		if interval > 0 {
			opts = append(opts, tinyevm.WithCheckpointInterval(interval))
		}
		svc, hub, err := tinyevm.NewService("hub", opts...)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if err := hub.RegisterSensorValue(ctx, tinyevm.SensorTemperature, 2150); err != nil {
			t.Fatal(err)
		}
		car, err := svc.AddNode(ctx, "car")
		if err != nil {
			t.Fatal(err)
		}
		if err := car.RegisterSensorValue(ctx, tinyevm.SensorTemperature, 2150); err != nil {
			t.Fatal(err)
		}
		ch, err := car.OpenChannel(ctx, hub.Address(), 1_000_000, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < blocks; i++ {
			if _, err := car.Pay(ctx, ch.ID, 3); err != nil {
				t.Fatal(err)
			}
			if _, err := car.Deposit(ctx, 10); err != nil {
				t.Fatal(err)
			}
		}
		svc.Close()
		svc2, _, err := tinyevm.NewService("hub", opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer svc2.Close()
		return svc2.RecoveryInfo()
	}

	const interval = 8
	shortCkpt := reopen(24, interval)
	longCkpt := reopen(72, interval)
	longFull := reopen(72, 0)

	// Ops per block in this workload: one payment + one deposit, so one
	// interval's tail is at most ~3x the interval in ops (plus setup).
	bound := int(interval)*3 + 8
	for _, ri := range []tinyevm.RecoveryInfo{shortCkpt, longCkpt} {
		if ri.CheckpointHeight == 0 {
			t.Fatalf("no checkpoint used: %+v", ri)
		}
		if ri.ReplayedOps > bound {
			t.Fatalf("checkpointed tail %d exceeds interval bound %d (%+v)", ri.ReplayedOps, bound, ri)
		}
	}
	if longCkpt.ReplayedOps > shortCkpt.ReplayedOps+bound {
		t.Fatalf("checkpointed tail grew with history: %d vs %d", longCkpt.ReplayedOps, shortCkpt.ReplayedOps)
	}
	if longFull.ReplayedOps <= 2*72 {
		t.Fatalf("full replay replayed %d ops for 72 blocks; journal suspiciously short", longFull.ReplayedOps)
	}
	if longFull.CheckpointHeight != 0 {
		t.Fatalf("full replay claims a checkpoint: %+v", longFull)
	}
}

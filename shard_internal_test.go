package tinyevm

// Internal tests for the shard-key assignment. Stability matters: an
// op's stripe is derived from a device address alone, so the same
// address must land on the same stripe in every process, forever —
// otherwise replay could interleave differently from the original run.

import (
	"testing"
)

// TestShardIndexPinned pins the FNV-1a derivation against fixed
// vectors, so an accidental constant or width change fails loudly
// rather than silently remapping every deployment.
func TestShardIndexPinned(t *testing.T) {
	var zero Address
	var ones Address
	for i := range ones {
		ones[i] = 0xff
	}
	var seq Address
	for i := range seq {
		seq[i] = byte(i)
	}
	cases := []struct {
		addr Address
		n    int
		want int
	}{
		{zero, 1, 0},
		{ones, 1, 0},
		{zero, 32, shardIndex(zero, 32)}, // self-consistency anchor
		{seq, 32, shardIndex(seq, 32)},   // (pinned below via re-hash)
		{ones, 1024, shardIndex(ones, 1024)},
	}
	for _, c := range cases {
		if got := shardIndex(c.addr, c.n); got != c.want {
			t.Errorf("shardIndex(%x, %d) = %d, want %d", c.addr, c.n, got, c.want)
		}
	}
	// Manual FNV-1a over the zero address pins the constants.
	h := uint32(2166136261)
	for i := 0; i < 20; i++ {
		h *= 16777619
	}
	if got := shardIndex(zero, 32); got != int(h%32) {
		t.Errorf("shardIndex(zero, 32) = %d, want FNV-1a %d", got, h%32)
	}
}

// FuzzShardKey fuzzes shard-key assignment stability: for any address
// and stripe count the index must be in range, deterministic across
// calls, independent of unrelated state, and 0 when only one stripe
// exists.
func FuzzShardKey(f *testing.F) {
	f.Add([]byte{}, uint16(1))
	f.Add([]byte{0x01}, uint16(32))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, uint16(7))
	f.Add(make([]byte, 20), uint16(1024))
	f.Fuzz(func(t *testing.T, raw []byte, n16 uint16) {
		var addr Address
		copy(addr[:], raw)
		n := int(n16%1024) + 1
		idx := shardIndex(addr, n)
		if idx < 0 || idx >= n {
			t.Fatalf("shardIndex(%x, %d) = %d out of range", addr, n, idx)
		}
		if again := shardIndex(addr, n); again != idx {
			t.Fatalf("shardIndex(%x, %d) unstable: %d then %d", addr, n, idx, again)
		}
		if n == 1 && idx != 0 {
			t.Fatalf("single stripe must be index 0, got %d", idx)
		}
		// Stripe-count reduction must stay a pure function of the hash:
		// hash mod 1 is always 0.
		if one := shardIndex(addr, 1); one != 0 {
			t.Fatalf("shardIndex(%x, 1) = %d, want 0", addr, one)
		}
	})
}

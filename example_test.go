package tinyevm_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"tinyevm"
	"tinyevm/internal/protocol"
)

// ExampleService is the documented quickstart: open a channel, pay over
// it, observe the payments on the counterparty's event stream, and run
// the countersigned close — with zero lockstep pumping.
func ExampleService() {
	ctx := context.Background()

	svc, lot, err := tinyevm.NewService("parking-lot")
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	car, err := svc.AddNode(ctx, "smart-car")
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []*tinyevm.ServiceNode{lot, car} {
		n.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) { return 2150, nil })
	}

	// The lot watches its stream; the car just pays.
	events := lot.Subscribe(ctx)

	cs, err := car.OpenChannel(ctx, lot.Address(), 10_000, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := car.Pay(ctx, cs.ID, 250); err != nil {
		log.Fatal(err)
	}
	if _, err := car.Pay(ctx, cs.ID, 250); err != nil {
		log.Fatal(err)
	}
	final, err := car.Close(ctx, cs.ID)
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		e := <-events
		fmt.Println(e.Type)
	}
	fmt.Println("cumulative:", final.Cumulative)
	fmt.Println("countersigned:", final.VerifySignatures() == nil)

	// Output:
	// channel-opened
	// payment-received
	// payment-received
	// channel-closed
	// cumulative: 500
	// countersigned: true
}

// ExampleService_typedErrors shows the error taxonomy: protocol
// failures match sentinel errors through errors.Is, across the whole
// service API.
func ExampleService_typedErrors() {
	ctx := context.Background()

	svc, lot, err := tinyevm.NewService("lot")
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	car, err := svc.AddNode(ctx, "car")
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []*tinyevm.ServiceNode{lot, car} {
		n.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) { return 2150, nil })
	}

	cs, err := car.OpenChannel(ctx, lot.Address(), 1_000, 0)
	if err != nil {
		log.Fatal(err)
	}

	_, err = car.Pay(ctx, cs.ID, 2_000) // exceeds the 1_000 deposit
	fmt.Println(errors.Is(err, protocol.ErrInsufficientChannelBalance))

	var cerr *protocol.ChannelError
	if errors.As(err, &cerr) {
		fmt.Printf("op=%s channel=%d\n", cerr.Op, cerr.Channel)
	}

	// Output:
	// true
	// op=pay channel=1
}

package tinyevm_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tinyevm"
	"tinyevm/internal/protocol"
)

func registerTemp(n interface {
	RegisterSensor(uint64, tinyevm.SensorFunc)
}) {
	n.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) { return 2150, nil })
}

// TestServiceMatchesLockstepFacade runs the same session through the
// deprecated lockstep façade and through the event-driven Service and
// requires the doubly-signed final states to be byte-identical on the
// wire.
func TestServiceMatchesLockstepFacade(t *testing.T) {
	amounts := []uint64{500, 500, 750}

	// Old façade, manual pumping.
	sys, lot, err := tinyevm.NewSystem(tinyevm.DefaultConfig(), "parking-lot")
	if err != nil {
		t.Fatal(err)
	}
	registerTemp(lot)
	car, err := sys.AddNode("smart-car")
	if err != nil {
		t.Fatal(err)
	}
	registerTemp(car)
	cs, err := car.OpenChannel(lot.Address(), 50_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lot.AcceptChannel(); err != nil {
		t.Fatal(err)
	}
	for _, amt := range amounts {
		if _, err := car.Pay(cs.ID, amt); err != nil {
			t.Fatal(err)
		}
		if _, err := lot.ReceivePayment(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := car.CloseChannel(cs.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := lot.AcceptClose(); err != nil {
		t.Fatal(err)
	}
	oldFinal, err := car.FinishClose()
	if err != nil {
		t.Fatal(err)
	}

	// New service, automatic dispatch. Same node names produce the same
	// deterministic device keys, hence comparable signatures.
	ctx := context.Background()
	svc, slot, err := tinyevm.NewService("parking-lot")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	registerTemp(slot)
	scar, err := svc.AddNode(ctx, "smart-car")
	if err != nil {
		t.Fatal(err)
	}
	registerTemp(scar)
	scs, err := scar.OpenChannel(ctx, slot.Address(), 50_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, amt := range amounts {
		if _, err := scar.Pay(ctx, scs.ID, amt); err != nil {
			t.Fatal(err)
		}
	}
	newFinal, err := scar.Close(ctx, scs.ID)
	if err != nil {
		t.Fatal(err)
	}

	oldWire := protocol.EncodeFinalState(protocol.MsgCloseAck, oldFinal)
	newWire := protocol.EncodeFinalState(protocol.MsgCloseAck, newFinal)
	if !bytes.Equal(oldWire, newWire) {
		t.Fatalf("final states diverge:\nold %x\nnew %x", oldWire, newWire)
	}
	if err := newFinal.VerifySignatures(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceEvents checks the full event sequence of one session on
// the provider's stream.
func TestServiceEvents(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc, lot, err := tinyevm.NewService("lot")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	registerTemp(lot)
	car, err := svc.AddNode(ctx, "car")
	if err != nil {
		t.Fatal(err)
	}
	registerTemp(car)

	events := lot.Subscribe(ctx)

	cs, err := car.OpenChannel(ctx, lot.Address(), 10_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := car.Pay(ctx, cs.ID, 250); err != nil {
		t.Fatal(err)
	}
	if _, err := car.Pay(ctx, cs.ID, 250); err != nil {
		t.Fatal(err)
	}
	final, err := car.Close(ctx, cs.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Cumulative != 500 || final.SigSender == nil || final.SigReceiver == nil {
		t.Fatalf("bad final state: %+v", final)
	}

	want := []tinyevm.EventType{
		tinyevm.EventChannelOpened,
		tinyevm.EventPaymentReceived,
		tinyevm.EventPaymentReceived,
		tinyevm.EventChannelClosed,
	}
	for i, w := range want {
		select {
		case e := <-events:
			if e.Type != w {
				t.Fatalf("event %d: got %s, want %s", i, e.Type, w)
			}
			if e.Node != "lot" {
				t.Fatalf("event %d delivered for node %q", i, e.Node)
			}
			if w == tinyevm.EventPaymentReceived && e.Amount != 250 {
				t.Fatalf("payment event amount %d", e.Amount)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for event %d (%s)", i, w)
		}
	}

	// Cancelling the context closes the stream.
	cancel()
	for range events { //nolint:revive // drain until closed
	}
}

// TestServiceBlockSealedAndDispute exercises the broadcast events: a
// deposit seals a block, and a fraud challenge raises a dispute.
func TestServiceBlockSealedAndDispute(t *testing.T) {
	ctx := context.Background()
	svc, lot, err := tinyevm.NewService("lot", tinyevm.WithChallengePeriod(4))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	registerTemp(lot)
	car, err := svc.AddNode(ctx, "car")
	if err != nil {
		t.Fatal(err)
	}
	registerTemp(car)

	events := lot.Subscribe(ctx)

	if _, err := car.Deposit(ctx, 10_000); err != nil {
		t.Fatal(err)
	}
	cs, err := car.OpenChannel(ctx, lot.Address(), 10_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := car.Pay(ctx, cs.ID, 1_000); err != nil {
		t.Fatal(err)
	}
	stale, err := car.Close(ctx, cs.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := car.Reopen(ctx, cs.ID); err != nil {
		t.Fatal(err)
	}
	if err := lot.Reopen(ctx, cs.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := car.Pay(ctx, cs.ID, 2_000); err != nil {
		t.Fatal(err)
	}
	fresh, err := car.Close(ctx, cs.ID)
	if err != nil {
		t.Fatal(err)
	}

	// The car commits the stale checkpoint; the lot challenges.
	if r, err := car.Commit(ctx, stale); err != nil || !r.Status {
		t.Fatalf("stale commit: %v %+v", err, r)
	}
	if r, err := lot.Commit(ctx, fresh); err != nil || !r.Status {
		t.Fatalf("challenge: %v %+v", err, r)
	}

	var sawSeal, sawDispute bool
	deadline := time.After(5 * time.Second)
	for !(sawSeal && sawDispute) {
		select {
		case e, ok := <-events:
			if !ok {
				t.Fatal("stream closed early")
			}
			switch e.Type {
			case tinyevm.EventBlockSealed:
				sawSeal = true
			case tinyevm.EventDispute:
				sawDispute = true
				if e.Peer != car.Address() {
					t.Fatalf("dispute blames %s, want car %s", e.Peer, car.Address())
				}
			}
		case <-deadline:
			t.Fatalf("missing events: seal=%v dispute=%v", sawSeal, sawDispute)
		}
	}
}

// TestServiceConcurrentSessions drives many concurrent clients through
// open -> pay xN -> close directly against the Service API (the RPC
// end-to-end test exercises the same load over HTTP).
func TestServiceConcurrentSessions(t *testing.T) {
	ctx := context.Background()
	svc, lot, err := tinyevm.NewService("provider")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	registerTemp(lot)

	const clients = 24
	const pays = 3

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node, err := svc.AddNode(ctx, fmt.Sprintf("dev-%03d", i))
			if err != nil {
				errCh <- err
				return
			}
			registerTemp(node)
			cs, err := node.OpenChannel(ctx, lot.Address(), 10_000, 0)
			if err != nil {
				errCh <- err
				return
			}
			for p := 0; p < pays; p++ {
				if _, err := node.Pay(ctx, cs.ID, 100); err != nil {
					errCh <- err
					return
				}
			}
			fs, err := node.Close(ctx, cs.ID)
			if err != nil {
				errCh <- err
				return
			}
			if fs.Cumulative != 100*pays {
				errCh <- fmt.Errorf("client %d: cumulative %d", i, fs.Cumulative)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	chans, err := lot.Channels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	closed := 0
	for _, cs := range chans {
		if cs.Closed() {
			closed++
		}
	}
	if closed != clients {
		t.Fatalf("provider sees %d closed channels, want %d", closed, clients)
	}
}

// TestServiceTypedErrors checks the taxonomy crosses the service
// boundary intact, and that contexts cancel operations.
func TestServiceTypedErrors(t *testing.T) {
	ctx := context.Background()
	svc, lot, err := tinyevm.NewService("lot")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	registerTemp(lot)
	car, err := svc.AddNode(ctx, "car")
	if err != nil {
		t.Fatal(err)
	}
	registerTemp(car)
	cs, err := car.OpenChannel(ctx, lot.Address(), 1_000, 0)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := car.Pay(ctx, cs.ID, 5_000); !errors.Is(err, protocol.ErrInsufficientChannelBalance) {
		t.Fatalf("overspend: got %v", err)
	}
	if _, err := car.Pay(ctx, 424242, 1); !errors.Is(err, protocol.ErrUnknownChannel) {
		t.Fatalf("unknown channel: got %v", err)
	}
	if _, err := car.Close(ctx, cs.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := car.Pay(ctx, cs.ID, 1); !errors.Is(err, protocol.ErrChannelClosed) {
		t.Fatalf("closed channel: got %v", err)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := car.Pay(cancelled, cs.ID, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: got %v", err)
	}

	svc.Close()
	if _, err := car.Pay(ctx, cs.ID, 1); !errors.Is(err, tinyevm.ErrServiceClosed) {
		t.Fatalf("closed service: got %v", err)
	}
}

// TestServiceEngineWorkers runs a session with the parallel-engine
// block producer configured and verifies on-chain settlement still
// works end to end.
func TestServiceEngineWorkers(t *testing.T) {
	ctx := context.Background()
	svc, lot, err := tinyevm.NewService("lot",
		tinyevm.WithEngineWorkers(4), tinyevm.WithChallengePeriod(3))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	registerTemp(lot)
	car, err := svc.AddNode(ctx, "car")
	if err != nil {
		t.Fatal(err)
	}
	registerTemp(car)

	if r, err := car.Deposit(ctx, 10_000); err != nil || !r.Status {
		t.Fatalf("deposit: %v %+v", err, r)
	}
	cs, err := car.OpenChannel(ctx, lot.Address(), 10_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := car.Pay(ctx, cs.ID, 2_500); err != nil {
		t.Fatal(err)
	}
	final, err := car.Close(ctx, cs.ID)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := lot.Commit(ctx, final); err != nil || !r.Status {
		t.Fatalf("commit: %v %+v", err, r)
	}
	if r, err := car.Exit(ctx); err != nil || !r.Status {
		t.Fatalf("exit: %v %+v", err, r)
	}
	if err := svc.RunChallengePeriod(ctx); err != nil {
		t.Fatal(err)
	}
	if r, err := lot.Settle(ctx); err != nil || !r.Status {
		t.Fatalf("settle: %v %+v", err, r)
	}
	settled, err := svc.TemplateSettled(ctx)
	if err != nil || !settled {
		t.Fatalf("settled=%v err=%v", settled, err)
	}
}

// TestServiceReceiverInitiatedClose covers the close handshake started
// by the RECEIVER side while multiple peers' wire ids collide on the
// provider: final-state resolution must key on the opener the message
// names, not on the transmitting peer.
func TestServiceReceiverInitiatedClose(t *testing.T) {
	ctx := context.Background()
	svc, lot, err := tinyevm.NewService("lot")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	registerTemp(lot)

	// Two cars: both open their first channel (wire id 1) to the lot.
	cars := make([]*tinyevm.ServiceNode, 2)
	chans := make([]tinyevm.ChannelState, 2)
	for i := range cars {
		car, err := svc.AddNode(ctx, fmt.Sprintf("car-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		registerTemp(car)
		cars[i] = car
		cs, err := car.OpenChannel(ctx, lot.Address(), 10_000, 0)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = cs
		if _, err := car.Pay(ctx, cs.ID, 111*uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}

	// The lot closes car-0's channel: receiver-initiated handshake.
	lotChans, err := lot.Channels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var lotHandle uint64
	for _, cs := range lotChans {
		if cs.Opener == cars[0].Address() {
			lotHandle = cs.ID
		}
	}
	fs, err := lot.Close(ctx, lotHandle)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Sender != cars[0].Address() || fs.Cumulative != 111 {
		t.Fatalf("wrong final state: %+v", fs)
	}
	if err := fs.VerifySignatures(); err != nil {
		t.Fatal(err)
	}
	// Car-0's side is closed; car-1's channel is untouched.
	cs0, _, err := cars[0].Channel(ctx, chans[0].ID)
	if err != nil || !cs0.Closed() {
		t.Fatalf("car-0 channel not closed: %v %+v", err, cs0)
	}
	cs1, _, err := cars[1].Channel(ctx, chans[1].ID)
	if err != nil || cs1.Closed() {
		t.Fatalf("car-1 channel wrongly closed: %v %+v", err, cs1)
	}
}

// TestServiceDeliveryFailure: when the locally-applied half of an
// operation succeeds but the counterparty rejects the dispatched
// message, the error wraps BOTH ErrDeliveryFailed and the remote cause,
// and the local artifact is still returned.
func TestServiceDeliveryFailure(t *testing.T) {
	ctx := context.Background()
	svc, lot, err := tinyevm.NewService("lot")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	registerTemp(lot)
	car, err := svc.AddNode(ctx, "car")
	if err != nil {
		t.Fatal(err)
	}
	registerTemp(car)
	cs, err := car.OpenChannel(ctx, lot.Address(), 10_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := car.Pay(ctx, cs.ID, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := car.Close(ctx, cs.ID); err != nil {
		t.Fatal(err)
	}
	// Only the payer reopens; the receiver still considers the channel
	// closed and rejects the next payment.
	if err := car.Reopen(ctx, cs.ID); err != nil {
		t.Fatal(err)
	}
	pay, err := car.Pay(ctx, cs.ID, 100)
	if !errors.Is(err, tinyevm.ErrDeliveryFailed) {
		t.Fatalf("want ErrDeliveryFailed, got %v", err)
	}
	if !errors.Is(err, protocol.ErrChannelClosed) {
		t.Fatalf("cause not preserved: %v", err)
	}
	if pay == nil || pay.Seq != 2 {
		t.Fatalf("locally applied payment not returned: %+v", pay)
	}
}

// TestServiceRoutePaymentEvents: routed payments publish per-hop
// payment-received / claim-settled events even though the route
// exchange is consumed internally.
func TestServiceRoutePaymentEvents(t *testing.T) {
	ctx := context.Background()
	svc, hub, err := tinyevm.NewService("hub")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	registerTemp(hub)
	car, err := svc.AddNode(ctx, "car")
	if err != nil {
		t.Fatal(err)
	}
	registerTemp(car)
	station, err := svc.AddNode(ctx, "station")
	if err != nil {
		t.Fatal(err)
	}
	registerTemp(station)

	stationEvents := station.Subscribe(ctx)
	carEvents := car.Subscribe(ctx)

	carHub, err := car.OpenChannel(ctx, hub.Address(), 1_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	hubStation, err := hub.OpenChannel(ctx, station.Address(), 1_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	route := []tinyevm.RouteStep{
		{Node: "car", Channel: carHub.ID},
		{Node: "hub", Channel: hubStation.ID},
	}
	if _, err := svc.RoutePayment(ctx, route, "station", 50_000, 1_000); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	var gotPay, gotClaim bool
	for !(gotPay && gotClaim) {
		select {
		case e := <-stationEvents:
			if e.Type == tinyevm.EventPaymentReceived {
				gotPay = true
				if e.Amount != 50_000 {
					t.Fatalf("station hop amount %d", e.Amount)
				}
			}
		case e := <-carEvents:
			if e.Type == tinyevm.EventClaimSettled {
				gotClaim = true
			}
		case <-deadline:
			t.Fatalf("missing route events: pay=%v claim=%v", gotPay, gotClaim)
		}
	}
}

package tinyevm_test

// Recovery tests for the durable service: a deployment journaled into a
// store (in-memory or WAL) must come back byte-identical — head block
// hash, chain state digest, balances and channel states — after being
// torn down and reconstructed with NewService over the same store.

import (
	"context"
	"testing"

	"tinyevm"
	"tinyevm/internal/store"
)

// recoveryOpts are the deployment parameters shared by the original run
// and every recovery (the store's meta record pins them).
func recoveryOpts(extra ...tinyevm.Option) []tinyevm.Option {
	return append([]tinyevm.Option{tinyevm.WithChallengePeriod(6)}, extra...)
}

// runRecoveryWorkload drives a representative mixed workload: nodes,
// journaled sensors, channels (one kept open, one closed), plain and
// conditional payments, a multi-hop route, sealed blocks via on-chain
// deposits and explicit mining.
func runRecoveryWorkload(t *testing.T, svc *tinyevm.Service, lot *tinyevm.ServiceNode) {
	t.Helper()
	ctx := context.Background()

	car, err := svc.AddNode(ctx, "car")
	if err != nil {
		t.Fatal(err)
	}
	bike, err := svc.AddNode(ctx, "bike")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []*tinyevm.ServiceNode{lot, car, bike} {
		if err := n.RegisterSensorValue(ctx, tinyevm.SensorTemperature, 2150); err != nil {
			t.Fatal(err)
		}
	}

	cs, err := car.OpenChannel(ctx, lot.Address(), 50_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := car.Pay(ctx, cs.ID, 1_000); err != nil {
			t.Fatal(err)
		}
	}

	// Conditional payment, claimed by the receiver.
	secret, lock, err := tinyevm.NewSecret()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := car.PayConditional(ctx, cs.ID, 700, lock); err != nil {
		t.Fatal(err)
	}
	lotCh, err := lot.Channels(ctx)
	if err != nil || len(lotCh) == 0 {
		t.Fatalf("lot channels: %v %v", lotCh, err)
	}
	if _, err := lot.Claim(ctx, lotCh[0].ID, secret); err != nil {
		t.Fatal(err)
	}

	// A second channel, closed cooperatively.
	cs2, err := bike.OpenChannel(ctx, lot.Address(), 9_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bike.Pay(ctx, cs2.ID, 400); err != nil {
		t.Fatal(err)
	}
	if _, err := bike.Close(ctx, cs2.ID); err != nil {
		t.Fatal(err)
	}

	// Multi-hop route bike -> car -> lot over fresh channels.
	rcs, err := bike.OpenChannel(ctx, car.Address(), 5_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.RoutePayment(ctx,
		[]tinyevm.RouteStep{{Node: "bike", Channel: rcs.ID}, {Node: "car", Channel: cs.ID}},
		lot.Name(), 250, 10); err != nil {
		t.Fatal(err)
	}

	// On-chain traffic: deposits seal blocks through SendTransaction.
	if _, err := car.Deposit(ctx, 20_000); err != nil {
		t.Fatal(err)
	}
	if _, err := lot.Deposit(ctx, 10_000); err != nil {
		t.Fatal(err)
	}
	if err := svc.MineBlock(ctx); err != nil {
		t.Fatal(err)
	}
}

// deploymentState is the observable state the recovery must reproduce.
type deploymentState struct {
	headNumber  uint64
	headHash    string
	stateDigest string
	balances    map[string]uint64
	channels    map[string][]channelFingerprint
}

type channelFingerprint struct {
	ID, WireID, Deposit, Seq, Cumulative uint64
	Peer                                 string
	Closed                               bool
	PaymentDigest                        string
}

func captureState(t *testing.T, svc *tinyevm.Service) deploymentState {
	t.Helper()
	ctx := context.Background()
	sys := svc.System()
	ds := deploymentState{
		headNumber:  sys.Chain.Head().Number,
		headHash:    sys.Chain.Head().Hash.Hex(),
		stateDigest: sys.Chain.State().Digest().Hex(),
		balances:    make(map[string]uint64),
		channels:    make(map[string][]channelFingerprint),
	}
	for _, sn := range svc.Nodes() {
		bal, err := svc.BalanceOf(ctx, sn.Address())
		if err != nil {
			t.Fatal(err)
		}
		ds.balances[sn.Name()] = bal
		chs, err := sn.Channels(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range chs {
			fp := channelFingerprint{
				ID: cs.ID, WireID: cs.WireID, Deposit: cs.Deposit,
				Seq: cs.Seq, Cumulative: cs.Cumulative,
				Peer: cs.Peer.Hex(), Closed: cs.Closed(),
			}
			if cs.LastPayment != nil {
				fp.PaymentDigest = cs.LastPayment.Digest().Hex()
			}
			ds.channels[sn.Name()] = append(ds.channels[sn.Name()], fp)
		}
	}
	return ds
}

func assertSameDeployment(t *testing.T, want, got deploymentState) {
	t.Helper()
	if got.headNumber != want.headNumber || got.headHash != want.headHash {
		t.Fatalf("head diverged: %d/%s vs %d/%s", got.headNumber, got.headHash, want.headNumber, want.headHash)
	}
	if got.stateDigest != want.stateDigest {
		t.Fatalf("state digest diverged: %s vs %s", got.stateDigest, want.stateDigest)
	}
	for name, bal := range want.balances {
		if got.balances[name] != bal {
			t.Fatalf("balance of %s diverged: %d vs %d", name, got.balances[name], bal)
		}
	}
	for name, chs := range want.channels {
		if len(got.channels[name]) != len(chs) {
			t.Fatalf("channel count of %s diverged: %d vs %d", name, len(got.channels[name]), len(chs))
		}
		for i, fp := range chs {
			if got.channels[name][i] != fp {
				t.Fatalf("channel %d of %s diverged:\n got %+v\nwant %+v", i, name, got.channels[name][i], fp)
			}
		}
	}
}

// TestServiceRecoveryRoundTrip journals a workload into an in-memory
// store, rebuilds the service from it, and requires the recovered
// deployment to be byte-identical and fully operational.
func TestServiceRecoveryRoundTrip(t *testing.T) {
	kv := store.NewMem()
	svc, lot, err := tinyevm.NewService("lot", recoveryOpts(tinyevm.WithStore(kv))...)
	if err != nil {
		t.Fatal(err)
	}
	runRecoveryWorkload(t, svc, lot)
	want := captureState(t, svc)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, _, err := tinyevm.NewService("lot", recoveryOpts(tinyevm.WithStore(kv))...)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	assertSameDeployment(t, want, captureState(t, svc2))

	// The recovered deployment keeps working and keeps journaling: pay
	// over the recovered channel, then recover a second time.
	ctx := context.Background()
	car, ok := svc2.Node("car")
	if !ok {
		t.Fatal("car not recovered")
	}
	chs, err := car.Channels(ctx)
	if err != nil || len(chs) == 0 {
		t.Fatalf("car channels after recovery: %v %v", chs, err)
	}
	if _, err := car.Pay(ctx, chs[0].ID, 123); err != nil {
		t.Fatalf("pay after recovery: %v", err)
	}
	want2 := captureState(t, svc2)
	svc2.Close()

	svc3, _, err := tinyevm.NewService("lot", recoveryOpts(tinyevm.WithStore(kv))...)
	if err != nil {
		t.Fatal(err)
	}
	defer svc3.Close()
	assertSameDeployment(t, want2, captureState(t, svc3))
}

// TestServiceRecoveryWAL runs the round-trip through the real WAL file,
// including a service-owned open/close cycle (WithDataDir) and a
// double recovery proving replay determinism.
func TestServiceRecoveryWAL(t *testing.T) {
	dir := t.TempDir()
	svc, lot, err := tinyevm.NewService("lot", recoveryOpts(tinyevm.WithDataDir(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	runRecoveryWorkload(t, svc, lot)
	want := captureState(t, svc)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		svc2, _, err := tinyevm.NewService("lot", recoveryOpts(tinyevm.WithDataDir(dir))...)
		if err != nil {
			t.Fatalf("recovery %d: %v", i, err)
		}
		assertSameDeployment(t, want, captureState(t, svc2))
		svc2.Close()
	}
}

// TestServiceRecoveryEngineWorkers recovers a serially-journaled
// deployment through the parallel engine (and vice versa): block
// production paths are byte-equivalent, so the store accepts either.
func TestServiceRecoveryEngineWorkers(t *testing.T) {
	kv := store.NewMem()
	svc, lot, err := tinyevm.NewService("lot", recoveryOpts(tinyevm.WithStore(kv))...)
	if err != nil {
		t.Fatal(err)
	}
	runRecoveryWorkload(t, svc, lot)
	want := captureState(t, svc)
	svc.Close()

	svc2, _, err := tinyevm.NewService("lot",
		recoveryOpts(tinyevm.WithStore(kv), tinyevm.WithEngineWorkers(4))...)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	assertSameDeployment(t, want, captureState(t, svc2))
}

// TestServiceRecoveryRejectsForeignStore pins the meta guard: a store
// journaled under one deployment cannot be replayed under different
// parameters.
func TestServiceRecoveryRejectsForeignStore(t *testing.T) {
	kv := store.NewMem()
	svc, _, err := tinyevm.NewService("lot", recoveryOpts(tinyevm.WithStore(kv))...)
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()

	if _, _, err := tinyevm.NewService("other-provider", recoveryOpts(tinyevm.WithStore(kv))...); err == nil {
		t.Fatal("foreign provider accepted")
	}
	if _, _, err := tinyevm.NewService("lot",
		tinyevm.WithChallengePeriod(99), tinyevm.WithStore(kv)); err == nil {
		t.Fatal("different challenge period accepted")
	}
	// The matching deployment still recovers.
	svc2, _, err := tinyevm.NewService("lot", recoveryOpts(tinyevm.WithStore(kv))...)
	if err != nil {
		t.Fatal(err)
	}
	svc2.Close()
}

package tinyevm_test

// Crash-recovery end-to-end test: a real tinyevm-serve process with
// -data-dir is SIGKILLed mid-workload (between block seals, with
// payments in flight), restarted, and must come back with every
// acknowledged operation intact. A second SIGKILL/restart cycle then
// proves recovery is deterministic: two recoveries of the same log
// observe byte-identical head blocks, balances and channel states.
//
// Run directly with:
//
//	go test -race -run TestCrashRecoveryE2E .
//
// (also wired into CI and `make recover-e2e`).

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tinyevm/internal/rpc"
)

func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crashes a child process; skipped in -short")
	}

	bin := filepath.Join(t.TempDir(), "tinyevm-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/tinyevm-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tinyevm-serve: %v\n%s", err, out)
	}

	dataDir := t.TempDir()
	addr := freeAddr(t)
	url := "http://" + addr
	client := rpc.NewClient(url, nil)
	ctx := context.Background()

	var proc *exec.Cmd
	start := func() {
		t.Helper()
		proc = exec.Command(bin, "-addr", addr, "-provider", "lot", "-data-dir", dataDir)
		proc.Stderr = os.Stderr
		if err := proc.Start(); err != nil {
			t.Fatal(err)
		}
		waitReady(t, client)
	}
	kill := func() {
		t.Helper()
		if err := proc.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
			t.Fatal(err)
		}
		proc.Wait()
	}
	t.Cleanup(func() {
		if proc != nil && proc.ProcessState == nil {
			proc.Process.Kill()
			proc.Wait()
		}
	})

	// --- phase 1: build acknowledged baseline state -------------------
	start()
	if _, err := client.AddNode(ctx, "car"); err != nil {
		t.Fatal(err)
	}
	ch, err := client.OpenChannel(ctx, "car", "lot", 50_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	ackedCum := uint64(0)
	for i := 0; i < 5; i++ {
		if _, err := client.Pay(ctx, "car", ch.ID, 100); err != nil {
			t.Fatal(err)
		}
		ackedCum += 100
	}
	if _, err := client.Deposit(ctx, "car", 10_000); err != nil { // seals a block
		t.Fatal(err)
	}
	ackedHead, err := client.Head(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ackedHead == 0 {
		t.Fatal("no block sealed in phase 1")
	}

	// --- phase 2: crash with operations in flight ---------------------
	// A background client hammers payments and block-sealing deposits;
	// the process is SIGKILLed mid-stream, so the kill lands between
	// block seals with un-acked operations outstanding.
	var (
		mu           sync.Mutex
		attemptedCum = ackedCum
		done         = make(chan struct{})
	)
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			mu.Lock()
			attemptedCum += 7
			mu.Unlock()
			if _, err := client.Pay(ctx, "car", ch.ID, 7); err != nil {
				return // the process died under us
			}
			mu.Lock()
			ackedCum += 7
			mu.Unlock()
			if i%5 == 4 {
				if _, err := client.Deposit(ctx, "car", 50); err != nil {
					return
				}
			}
		}
	}()
	time.Sleep(250 * time.Millisecond)
	kill()
	<-done
	mu.Lock()
	lowCum, highCum := ackedCum, attemptedCum
	mu.Unlock()

	// --- phase 3: recover and verify the durability contract ----------
	start()
	head, err := client.Head(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if head < ackedHead {
		t.Fatalf("recovered head %d below acknowledged head %d", head, ackedHead)
	}
	carChans, err := client.Channels(ctx, "car")
	if err != nil {
		t.Fatal(err)
	}
	if len(carChans) != 1 {
		t.Fatalf("car channels after crash: %d", len(carChans))
	}
	gotCum := carChans[0].Cumulative
	if gotCum < lowCum || gotCum > highCum {
		t.Fatalf("recovered cumulative %d outside acked..attempted window [%d, %d]", gotCum, lowCum, highCum)
	}
	// The receiver side must agree with the payer side exactly.
	lotChans, err := client.Channels(ctx, "lot")
	if err != nil {
		t.Fatal(err)
	}
	if len(lotChans) != 1 || lotChans[0].Cumulative != gotCum {
		t.Fatalf("lot mirror diverged: %+v vs cumulative %d", lotChans, gotCum)
	}

	snapA := e2eSnapshot(t, client)

	// --- phase 4: crash again; two recoveries must be identical -------
	kill()
	start()
	snapB := e2eSnapshot(t, client)
	if snapA != snapB {
		t.Fatalf("recovery is not deterministic:\n first  %+v\n second %+v", snapA, snapB)
	}

	// The recovered deployment stays live: one more payment and seal.
	if _, err := client.Pay(ctx, "car", ch.ID, 11); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Deposit(ctx, "car", 25); err != nil {
		t.Fatal(err)
	}
	kill()
}

// e2eSnapshot captures the externally observable deployment state over
// RPC, as a comparable value.
func e2eSnapshot(t *testing.T, client *rpc.Client) string {
	t.Helper()
	ctx := context.Background()
	head, err := client.Head(ctx)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := client.Provider(ctx)
	if err != nil {
		t.Fatal(err)
	}
	provBal, err := client.Balance(ctx, prov.Address)
	if err != nil {
		t.Fatal(err)
	}
	out := fmt.Sprintf("head=%d provider=%s bal=%d", head, prov.Address, provBal)
	for _, node := range []string{"car", "lot"} {
		chans, err := client.Channels(ctx, node)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range chans {
			out += fmt.Sprintf(" %s[id=%d wire=%d dep=%d seq=%d cum=%d closed=%v]",
				node, c.ID, c.WireID, c.Deposit, c.Seq, c.Cumulative, c.Closed)
		}
	}
	return out
}

// freeAddr reserves a localhost port for the child process.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitReady polls the daemon until it answers RPC.
func waitReady(t *testing.T, client *rpc.Client) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := client.Head(ctx)
		cancel()
		if err == nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("tinyevm-serve did not become ready")
}

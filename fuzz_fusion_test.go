package tinyevm_test

// Differential fuzzer for the tiered interpreter: arbitrary bytecode is
// executed on two parallel states — one with superinstruction fusion
// enabled (calling repeatedly so the code is promoted to tier-1 decoded
// blocks) and one pinned to tier-0 per-opcode dispatch — and every
// observable of every call must match byte for byte: gas used, error
// text, return data, step count, stack high-water mark and the state
// digest after each call. Seeds include the real contract workload
// runtimes (ERC-20 transfer, counter, donate ledger), hand-assembled
// control-flow fragments, and raw blobs.
//
// Run as a regression test with `go test`, or explore with:
//
//	go test -run '^$' -fuzz FuzzFusedVsUnfused .
import (
	"bytes"
	"testing"

	"tinyevm/internal/asm"
	"tinyevm/internal/eval"
	"tinyevm/internal/evm"
	"tinyevm/internal/types"
	"tinyevm/internal/uint256"
)

func FuzzFusedVsUnfused(f *testing.F) {
	for _, runtime := range eval.WorkloadRuntimes() {
		f.Add(runtime, []byte(nil))
	}
	// The erc20 transfer path with real calldata.
	erc20 := eval.WorkloadRuntimes()["erc20"]
	to := make([]byte, 32)
	to[31] = 0x42
	amt := make([]byte, 32)
	amt[31] = 1
	f.Add(erc20, eval.CallData(eval.Selector("transfer(address,uint256)"),
		[32]byte(to), [32]byte(amt)))
	f.Add(erc20, eval.CallData(eval.Selector("balanceOf(address)"), [32]byte(to)))
	// Hand-assembled fragments hitting the fusion patterns.
	f.Add(asm.MustAssemble(`
		PUSH 10
		:loop JUMPDEST
		PUSH 1
		SWAP1
		SUB
		DUP1
		PUSH :loop
		JUMPI
		PUSH 0
		MSTORE
		PUSH 32
		PUSH 0
		RETURN
	`), []byte(nil))
	f.Add(asm.MustAssemble(`
		PUSH 3
		PUSH 4
		MUL
		ISZERO
		PUSH :done
		JUMPI
		PUSH 7
		PUSH 0
		SSTORE
		:done JUMPDEST
		STOP
	`), []byte{1, 2, 3})
	// Raw blobs: truncated pushes, invalid opcodes, jump soup.
	f.Add([]byte{0x60, 0x01, 0x56}, []byte(nil))
	f.Add([]byte{0x5B, 0x60, 0x00, 0x56}, []byte(nil))
	f.Add([]byte{0x60, 0xFF, 0x60}, []byte(nil))
	f.Add([]byte{0xFE, 0x00, 0x5B}, []byte(nil))

	caller := types.MustHexToAddress("0x00000000000000000000000000000000000000f1")
	target := types.MustHexToAddress("0x00000000000000000000000000000000000000f2")

	f.Fuzz(func(t *testing.T, code, input []byte) {
		if len(code) > 4096 || len(input) > 512 {
			return
		}
		for _, mode := range []struct {
			label string
			cfg   evm.Config
			gas   uint64
		}{
			{"tiny", evm.TinyConfig(), 0},
			{"full", evm.FullConfig(), 200_000},
		} {
			fusedCfg := mode.cfg
			fusedCfg.DisableFusion = false
			flatCfg := mode.cfg
			flatCfg.DisableFusion = true

			fusedState := evm.NewMemState()
			fusedState.SetCode(target, code)
			flatState := evm.NewMemState()
			flatState.SetCode(target, code)
			fused := evm.New(fusedCfg, fusedState)
			flat := evm.New(flatCfg, flatState)

			// Enough calls to cross the promotion threshold, so the later
			// iterations compare a genuine tier-1 execution against tier-0.
			for i := 0; i < 6; i++ {
				a := fused.Call(caller, target, input, uint256.NewInt(0), mode.gas)
				b := flat.Call(caller, target, input, uint256.NewInt(0), mode.gas)
				if (a.Err == nil) != (b.Err == nil) ||
					(a.Err != nil && a.Err.Error() != b.Err.Error()) {
					t.Fatalf("%s call %d: err %v (fused) vs %v (flat)\ncode %x",
						mode.label, i, a.Err, b.Err, code)
				}
				if !bytes.Equal(a.ReturnData, b.ReturnData) {
					t.Fatalf("%s call %d: return %x (fused) vs %x (flat)\ncode %x",
						mode.label, i, a.ReturnData, b.ReturnData, code)
				}
				if a.GasUsed != b.GasUsed {
					t.Fatalf("%s call %d: gas %d (fused) vs %d (flat)\ncode %x",
						mode.label, i, a.GasUsed, b.GasUsed, code)
				}
				if a.Stats != b.Stats {
					t.Fatalf("%s call %d: stats %+v (fused) vs %+v (flat)\ncode %x",
						mode.label, i, a.Stats, b.Stats, code)
				}
				if fusedState.Digest() != flatState.Digest() {
					t.Fatalf("%s call %d: state digest diverged\ncode %x input %x",
						mode.label, i, code, input)
				}
			}
		}
	})
}

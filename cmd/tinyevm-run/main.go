// Command tinyevm-run executes EVM bytecode on a simulated TinyEVM
// device and reports the result, execution statistics and the implied
// on-device cost:
//
//	tinyevm-run -code 600160020160005260206000f3
//	tinyevm-run -file contract.hex -deploy
//	tinyevm-run -file contract.hex -deploy -calldata a9059cbb...
//	tinyevm-run -code ... -disasm
//	tinyevm-run -engine -engine-devices 64 -engine-workers 1,4,16
//
// With -engine, instead of executing bytecode, the multi-device
// parallel-execution throughput scenario runs: the same batch of
// contract invocations is mined serially and through the parallel
// engine at each worker count, receipts are verified byte-identical,
// and the throughput table is printed.
//
// With -deploy, the bytecode runs as a constructor and the returned
// runtime code is installed (and then optionally called with -calldata).
// Without it, the bytecode itself is executed directly. The simulated
// device registers a constant temperature sensor so contracts using the
// IoT opcode work out of the box.
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"tinyevm/internal/asm"
	"tinyevm/internal/device"
	"tinyevm/internal/eval"
	"tinyevm/internal/evm"
	"tinyevm/internal/types"
)

func main() {
	var (
		codeHex  = flag.String("code", "", "bytecode as hex")
		file     = flag.String("file", "", "file containing hex bytecode")
		deploy   = flag.Bool("deploy", false, "treat bytecode as a constructor and deploy it")
		calldata = flag.String("calldata", "", "calldata as hex for the call")
		disasm   = flag.Bool("disasm", false, "print a disassembly and exit")
		trace    = flag.Bool("trace", false, "print every executed instruction")

		engineRun      = flag.Bool("engine", false, "run the parallel-engine throughput scenario")
		engineDevices  = flag.Int("engine-devices", 64, "engine scenario: number of devices")
		engineTxs      = flag.Int("engine-txs", 8, "engine scenario: transactions per device")
		engineConflict = flag.Float64("engine-conflict", 0.05, "engine scenario: fraction of txs hitting the shared hot contract")
		engineLoops    = flag.Int("engine-loops", 100, "engine scenario: compute loop length per invocation")
		engineWorkers  = flag.String("engine-workers", "1,4,16", "engine scenario: comma-separated worker counts")
	)
	flag.Parse()

	if *engineRun {
		// SIGINT aborts the scenario cleanly between worker-count runs
		// instead of leaving the worker pool mid-flight.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()

		workers, err := parseWorkers(*engineWorkers)
		if err != nil {
			fatal(err)
		}
		rep, err := eval.RunEngineThroughput(ctx, eval.EngineWorkloadParams{
			Devices:          *engineDevices,
			TxPerDevice:      *engineTxs,
			ConflictFraction: *engineConflict,
			WorkLoops:        *engineLoops,
		}, workers)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "tinyevm-run: interrupted")
			os.Exit(130)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.String())
		for _, row := range rep.Rows {
			if !row.Identical {
				fatal(fmt.Errorf("worker count %d produced receipts diverging from serial execution", row.Workers))
			}
		}
		return
	}

	code, err := loadCode(*codeHex, *file)
	if err != nil {
		fatal(err)
	}

	if *disasm {
		fmt.Print(asm.Disassemble(code))
		return
	}

	dev := device.New("tinyevm-run")
	dev.Sensors.RegisterValue(device.SensorTemperature, 2150)
	if *trace {
		prev := dev.VM.Tracer
		dev.VM.Tracer = &printTracer{next: prev}
	}

	input, err := hexBytes(*calldata)
	if err != nil {
		fatal(fmt.Errorf("bad calldata: %w", err))
	}

	if *deploy {
		res := dev.Deploy(code, 0)
		if res.Err != nil {
			fatal(fmt.Errorf("deployment failed: %w", res.Err))
		}
		fmt.Printf("deployed to        %s\n", res.Address)
		fmt.Printf("runtime size       %d bytes\n", res.RuntimeSize)
		fmt.Printf("memory high-water  %d bytes\n", res.MemoryUsage)
		fmt.Printf("max stack pointer  %d words\n", res.MaxStackPointer)
		fmt.Printf("device time        %s\n", res.Time)
		if len(input) > 0 {
			call := dev.Call(res.Address, input, 0)
			printCall(call)
		}
		return
	}

	// Direct execution: install as code and call it.
	target := types.MustHexToAddress("0x00000000000000000000000000000000000000ee")
	dev.State.SetCode(target, code)
	printCall(dev.Call(target, input, 0))
}

func printCall(res device.CallResult) {
	if res.Err != nil {
		fatal(fmt.Errorf("execution failed: %w", res.Err))
	}
	fmt.Printf("return data        0x%x\n", res.ReturnData)
	fmt.Printf("steps              %d\n", res.Stats.Steps)
	fmt.Printf("max stack pointer  %d words\n", res.Stats.MaxStackDepth)
	fmt.Printf("peak memory        %d bytes\n", res.Stats.PeakMemory)
	fmt.Printf("device time        %s\n", res.Time)
}

type printTracer struct {
	next evm.Tracer
}

func (t *printTracer) CaptureOp(pc uint64, op evm.Opcode, stack *evm.Stack, mem uint64) {
	fmt.Fprintf(os.Stderr, "%06x  %-14s stack=%d mem=%d\n", pc, op, stack.Len(), mem)
	if t.next != nil {
		t.next.CaptureOp(pc, op, stack, mem)
	}
}

func loadCode(codeHex, file string) ([]byte, error) {
	switch {
	case codeHex != "" && file != "":
		return nil, fmt.Errorf("use either -code or -file, not both")
	case codeHex != "":
		return hexBytes(codeHex)
	case file != "":
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return hexBytes(string(raw))
	default:
		return nil, fmt.Errorf("no bytecode: use -code or -file")
	}
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts given")
	}
	return out, nil
}

func hexBytes(s string) ([]byte, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "0x")
	if s == "" {
		return nil, nil
	}
	return hex.DecodeString(s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tinyevm-run: %v\n", err)
	os.Exit(1)
}

// Command tinyevm-serve runs a TinyEVM deployment as a network daemon:
// a JSON-RPC 2.0 gateway over HTTP through which external clients
// create nodes, open off-chain payment channels, pay, subscribe to
// events (long-poll) and settle on the simulated main chain.
//
//	tinyevm-serve -addr :8545 -provider parking-lot
//	tinyevm-serve -addr :8545 -engine-workers 8 -challenge 10
//
// With -listen/-peers/-node-key/-validators, N daemons join into one
// replicated sidechain (see docs/CLUSTER.md):
//
//	tinyevm-serve -addr :8545 -listen :30301 -node-key n1 \
//	  -peers localhost:30302,localhost:30303 -validators n1,n2,n3
//
// A session from the shell:
//
//	curl -s -X POST localhost:8545 -d '{"jsonrpc":"2.0","id":1,
//	  "method":"tinyevm_addNode","params":{"name":"car"}}'
//	curl -s -X POST localhost:8545 -d '{"jsonrpc":"2.0","id":2,
//	  "method":"tinyevm_openChannel","params":{"node":"car",
//	  "peer":"parking-lot","deposit":10000}}'
//
// SIGINT/SIGTERM shut the daemon down cleanly: in-flight requests
// drain, subscriptions close, and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"tinyevm"
	"tinyevm/internal/rpc"
	"tinyevm/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8545", "HTTP listen address")
		provider  = flag.String("provider", "provider", "provider node name (payment receiver)")
		challenge = flag.Uint64("challenge", 10, "challenge period in blocks")
		workers   = flag.Int("engine-workers", 0, "parallel-engine workers for block production (0 = serial)")
		lossRate  = flag.Float64("radio-loss", 0, "per-frame radio loss probability")
		radioSeed = flag.Int64("radio-seed", 1, "radio loss process seed")
		dataDir   = flag.String("data-dir", "", "persist the deployment to a write-ahead log in this directory; on restart the previous state (nodes, channels, balances, blocks) is recovered (cluster mode persists the block archive here instead)")
		backend   = flag.String("backend", "wal", "storage engine under -data-dir: wal (single rewritten log file) or disk (memtable + sorted segments with background compaction)")
		ckptEvery = flag.Uint64("checkpoint-interval", 64, "write a full state checkpoint every N sealed blocks and prune the folded-in op log, bounding restart time (0 disables; forced off with -radio-loss or cluster mode)")
		stateMode = flag.String("state-commitment", "digest", "per-block state commitment: digest (legacy full-state hash) or mst (incremental Merkle-sum tree enabling tinyevm_stateProof); a -data-dir store is pinned to the mode that created it")

		// Cluster mode: N daemons form one sidechain (see docs/CLUSTER.md).
		listen        = flag.String("listen", "", "cluster p2p listen address (enables cluster mode together with -node-key/-validators)")
		peers         = flag.String("peers", "", "comma-separated cluster peer p2p addresses")
		nodeKey       = flag.String("node-key", "", "validator identity seed for this daemon")
		validators    = flag.String("validators", "", "comma-separated validator seeds of the full set, in schedule order (identical on every daemon)")
		blockInterval = flag.Duration("block-interval", time.Second, "heartbeat block production interval for the scheduled leader (cluster mode)")
		fallback      = flag.Duration("fallback", 10*time.Second, "let the next validator take an overdue round after this long (0 = strict single leader)")
		strictDigests = flag.Bool("strict-digests", false, "require applied blocks to reproduce the proposer's gas usage and state digest exactly")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	clusterMode := *nodeKey != "" || *validators != ""
	opts := []tinyevm.Option{
		tinyevm.WithChallengePeriod(*challenge),
		tinyevm.WithRadioLossRate(*lossRate),
		tinyevm.WithRadioSeed(*radioSeed),
	}
	if clusterMode {
		// The op-log journal and parallel engine are incompatible with
		// replicated blocks; -data-dir becomes the cluster block archive.
		cc := tinyevm.ClusterConfig{
			Listen:        *listen,
			Peers:         splitList(*peers),
			NodeKey:       *nodeKey,
			Validators:    splitList(*validators),
			BlockInterval: *blockInterval,
			FallbackAfter: *fallback,
			StrictDigests: *strictDigests,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "tinyevm-serve: "+format+"\n", args...)
			},
		}
		if *dataDir != "" {
			kv, err := store.OpenWAL(filepath.Join(*dataDir, "cluster.wal"))
			if err != nil {
				fatal(err)
			}
			defer kv.Close()
			cc.Store = kv
		}
		opts = append(opts, tinyevm.WithCluster(cc))
	} else {
		opts = append(opts, tinyevm.WithEngineWorkers(*workers))
		if *dataDir != "" {
			opts = append(opts,
				tinyevm.WithDataDir(*dataDir),
				tinyevm.WithStoreBackend(*backend),
				tinyevm.WithCheckpointInterval(*ckptEvery),
			)
		}
	}
	switch *stateMode {
	case "digest":
	case "mst":
		opts = append(opts, tinyevm.WithMSTCommitment(true))
	default:
		fatal(fmt.Errorf("unknown -state-commitment %q (want digest or mst)", *stateMode))
	}
	svc, prov, err := tinyevm.NewService(*provider, opts...)
	if err != nil {
		fatal(err)
	}
	defer svc.Close()
	if *dataDir != "" && !clusterMode {
		// Recovery observability: where restart work came from (the
		// checkpoint) and how much was left to replay (the tail). The
		// bench line is machine-readable (benchreport -parse).
		ri := svc.RecoveryInfo()
		fmt.Fprintf(os.Stderr,
			"tinyevm-serve: recovered state from %s (head block %d, checkpoint height %d, replayed %d tail ops)\n",
			*dataDir, mustHead(ctx, svc), ri.CheckpointHeight, ri.ReplayedOps)
		fmt.Fprintf(os.Stderr, "BenchmarkServeRecovery 1 %.3f recovery_ms\n",
			float64(ri.Duration.Microseconds())/1000)
	} else if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "tinyevm-serve: recovered state from %s (head block %d)\n",
			*dataDir, mustHead(ctx, svc))
	}
	// Journaled default sensor: replayed on recovery before any channel
	// contract reads it; re-registering the same value is idempotent.
	if err := prov.RegisterSensorValue(ctx, tinyevm.SensorTemperature, rpc.DefaultSensorValue); err != nil {
		fatal(err)
	}

	server := &http.Server{
		Addr:        *addr,
		Handler:     rpc.NewServer(svc),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tinyevm-serve: provider %q (%s) listening on %s\n",
		prov.Name(), prov.Address(), *addr)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "tinyevm-serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func mustHead(ctx context.Context, svc *tinyevm.Service) uint64 {
	head, err := svc.HeadBlock(ctx)
	if err != nil {
		fatal(err)
	}
	return head
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tinyevm-serve: %v\n", err)
	os.Exit(1)
}

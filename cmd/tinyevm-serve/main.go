// Command tinyevm-serve runs a TinyEVM deployment as a network daemon:
// a JSON-RPC 2.0 gateway over HTTP through which external clients
// create nodes, open off-chain payment channels, pay, subscribe to
// events (long-poll) and settle on the simulated main chain.
//
//	tinyevm-serve -addr :8545 -provider parking-lot
//	tinyevm-serve -addr :8545 -engine-workers 8 -challenge 10
//
// A session from the shell:
//
//	curl -s -X POST localhost:8545 -d '{"jsonrpc":"2.0","id":1,
//	  "method":"tinyevm_addNode","params":{"name":"car"}}'
//	curl -s -X POST localhost:8545 -d '{"jsonrpc":"2.0","id":2,
//	  "method":"tinyevm_openChannel","params":{"node":"car",
//	  "peer":"parking-lot","deposit":10000}}'
//
// SIGINT/SIGTERM shut the daemon down cleanly: in-flight requests
// drain, subscriptions close, and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tinyevm"
	"tinyevm/internal/rpc"
)

func main() {
	var (
		addr      = flag.String("addr", ":8545", "HTTP listen address")
		provider  = flag.String("provider", "provider", "provider node name (payment receiver)")
		challenge = flag.Uint64("challenge", 10, "challenge period in blocks")
		workers   = flag.Int("engine-workers", 0, "parallel-engine workers for block production (0 = serial)")
		lossRate  = flag.Float64("radio-loss", 0, "per-frame radio loss probability")
		radioSeed = flag.Int64("radio-seed", 1, "radio loss process seed")
		dataDir   = flag.String("data-dir", "", "persist the deployment to a write-ahead log in this directory; on restart the previous state (nodes, channels, balances, blocks) is recovered")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []tinyevm.Option{
		tinyevm.WithChallengePeriod(*challenge),
		tinyevm.WithEngineWorkers(*workers),
		tinyevm.WithRadioLossRate(*lossRate),
		tinyevm.WithRadioSeed(*radioSeed),
	}
	if *dataDir != "" {
		opts = append(opts, tinyevm.WithDataDir(*dataDir))
	}
	svc, prov, err := tinyevm.NewService(*provider, opts...)
	if err != nil {
		fatal(err)
	}
	defer svc.Close()
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "tinyevm-serve: recovered state from %s (head block %d)\n",
			*dataDir, mustHead(ctx, svc))
	}
	// Journaled default sensor: replayed on recovery before any channel
	// contract reads it; re-registering the same value is idempotent.
	if err := prov.RegisterSensorValue(ctx, tinyevm.SensorTemperature, rpc.DefaultSensorValue); err != nil {
		fatal(err)
	}

	server := &http.Server{
		Addr:        *addr,
		Handler:     rpc.NewServer(svc),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tinyevm-serve: provider %q (%s) listening on %s\n",
		prov.Name(), prov.Address(), *addr)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "tinyevm-serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func mustHead(ctx context.Context, svc *tinyevm.Service) uint64 {
	head, err := svc.HeadBlock(ctx)
	if err != nil {
		fatal(err)
	}
	return head
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tinyevm-serve: %v\n", err)
	os.Exit(1)
}

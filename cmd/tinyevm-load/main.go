// Command tinyevm-load is the city-scale load harness: it drives a
// TinyEVM gateway with a simulated fleet of vehicles, parking meters
// and sensor oracles, injects faults (client kills, dropped/delayed RPC
// responses, daemon SIGKILL + WAL recovery), and reports latency
// quantiles, throughput, an error taxonomy and recovery times.
//
// Point it at a running gateway:
//
//	tinyevm-load -url http://127.0.0.1:8545 -duration 10s
//
// or let it spawn (and crash, and recover) its own daemon:
//
//	tinyevm-load -spawn -daemon-kills 2 -duration 30s -bench-out load-bench.txt
//
// The -bench-out file is `go test -bench` formatted; feed it to
// cmd/benchreport to produce a BENCH_<n>.json artifact:
//
//	go run ./cmd/benchreport -parse load-bench.txt -out BENCH_5.json
//
// -mode contracts skips the RPC harness and instead runs the in-process
// contract workload suite (ERC-20 token, counter, donate — see
// internal/eval); -mode all runs both. The exit code is the gate: 1
// when any error fell outside the taxonomy or a daemon recovery failed.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tinyevm/internal/eval"
	"tinyevm/internal/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		url     = flag.String("url", "", "target gateway URL (mutually exclusive with -spawn)")
		targets = flag.String("targets", "", "comma-separated gateway URLs of a daemon cluster; vehicles are spread sticky across them and the report adds per-node buckets")
		mode    = flag.String("mode", "rpc", "rpc | contracts | all")

		spawn       = flag.Bool("spawn", false, "build and manage a tinyevm-serve child (required for -daemon-kills)")
		serveBin    = flag.String("serve-bin", "", "path to a prebuilt tinyevm-serve (default: go build it)")
		dataDir     = flag.String("data-dir", "", "WAL directory for the spawned daemon (default: temp dir)")
		provider    = flag.String("provider", "city", "provider node name for the spawned daemon")
		daemonFlags = flag.String("daemon-args", "", "extra args for the spawned daemon (space-separated)")

		profiles    = flag.String("profiles", "all", "comma-separated contention profiles: disjoint,hotspot,fanin")
		arrival     = flag.String("arrival", "closed", "closed (fixed workers) | poisson (open loop)")
		rate        = flag.Float64("rate", 50, "poisson session arrivals per second")
		concurrency = flag.Int("concurrency", 8, "workers (closed) / max in-flight sessions (poisson)")
		vehicles    = flag.Int("vehicles", 16, "paying-device population")
		hotMeters   = flag.Int("hot-meters", 4, "meter count for the hotspot profile")
		duration    = flag.Duration("duration", 5*time.Second, "measurement window per profile")
		payments    = flag.Int("payments", 10, "payments per session")
		batch       = flag.Int("batch", 1, "group this many payments into one JSON-RPC batch request (1 = no batching)")
		deposit     = flag.Uint64("deposit", 10_000, "channel deposit")
		amount      = flag.Uint64("amount", 5, "per-payment amount")
		depositEach = flag.Int("deposit-every", 7, "every k-th session locks funds on-chain (seals a block); 0 disables")
		seed        = flag.Int64("seed", 1, "fault/arrival seed (reports are reproducible per seed)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-RPC-attempt timeout")
		retries     = flag.Int("retries", 3, "transport-level retries per RPC")

		clientKill  = flag.Float64("client-kill", 0, "probability a session dies mid-payment")
		dropRate    = flag.Float64("drop", 0, "probability an RPC response is dropped")
		delayRate   = flag.Float64("delay", 0, "probability an RPC round trip is delayed")
		delayMax    = flag.Duration("delay-max", 50*time.Millisecond, "max injected delay")
		daemonKills = flag.Int("daemon-kills", 0, "SIGKILL+recover cycles against the spawned daemon")

		wlAccounts = flag.Int("wl-accounts", 32, "contract workloads: sender accounts")
		wlTxs      = flag.Int("wl-txs", 512, "contract workloads: transactions per scenario")
		wlBlock    = flag.Int("wl-block", 128, "contract workloads: transactions per block")
		wlWorkers  = flag.Int("wl-workers", 0, "contract workloads: engine workers (0 = serial)")

		benchOut = flag.String("bench-out", "", "write go-bench-format results to this file (\"-\" = stdout)")
	)
	flag.Parse()

	profs, err := load.ParseProfiles(*profiles)
	if err != nil {
		return fail(err)
	}
	if *mode != "rpc" && *mode != "contracts" && *mode != "all" {
		return fail(fmt.Errorf("bad -mode %q (want rpc, contracts or all)", *mode))
	}
	targetList := splitList(*targets)
	runRPC := *mode != "contracts"
	if runRPC && *url == "" && len(targetList) == 0 && !*spawn {
		return fail(fmt.Errorf("need -url, -targets or -spawn for -mode %s", *mode))
	}
	if len(targetList) > 0 && (*url != "" || *spawn) {
		return fail(fmt.Errorf("-targets is mutually exclusive with -url and -spawn"))
	}
	if *daemonKills > 0 && !*spawn {
		return fail(fmt.Errorf("-daemon-kills requires -spawn (the harness must own the process it crashes)"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var bench bytes.Buffer
	gate := 0

	if runRPC {
		var daemon *load.Daemon
		if *spawn {
			daemon, err = spawnDaemon(ctx, *serveBin, *dataDir, *provider, *daemonFlags)
			if err != nil {
				return fail(err)
			}
			defer daemon.Stop()
		}
		cfg := load.Config{
			URL:            *url,
			Targets:        targetList,
			Profiles:       profs,
			Vehicles:       *vehicles,
			HotMeters:      *hotMeters,
			Arrival:        *arrival,
			Rate:           *rate,
			Concurrency:    *concurrency,
			Duration:       *duration,
			Payments:       *payments,
			Batch:          *batch,
			ChannelDeposit: *deposit,
			Amount:         *amount,
			DepositEvery:   *depositEach,
			Seed:           *seed,
			RequestTimeout: *timeout,
			Retries:        *retries,
			Faults: load.FaultConfig{
				ClientKillRate: *clientKill,
				DropRate:       *dropRate,
				DelayRate:      *delayRate,
				DelayMax:       *delayMax,
				DaemonKills:    *daemonKills,
			},
		}
		runner := load.New(cfg, daemon)
		if kills := runner.Plan().KillTimes(); len(kills) > 0 {
			fmt.Printf("fault plan (seed %d): daemon kills at %v\n", *seed, kills)
		}
		rep, err := runner.Run(ctx)
		if err != nil {
			return fail(err)
		}
		fmt.Print(rep)
		if err := rep.WriteBench(&bench); err != nil {
			return fail(err)
		}
		if err := rep.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "tinyevm-load: GATE FAILED: %v\n", err)
			gate = 1
		}
	}

	if *mode == "contracts" || *mode == "all" {
		p := eval.WorkloadParams{Accounts: *wlAccounts, Txs: *wlTxs, BlockSize: *wlBlock, Workers: *wlWorkers}
		for _, spec := range eval.ContractWorkloads() {
			res, err := eval.RunContractWorkload(ctx, spec, p)
			if err != nil {
				return fail(fmt.Errorf("workload %s: %w", spec.Name, err))
			}
			fmt.Println(res)
			writeContractBench(&bench, res)
			if res.Failed > 0 {
				fmt.Fprintf(os.Stderr, "tinyevm-load: GATE FAILED: %s: %d failed transactions\n",
					res.Name, res.Failed)
				gate = 1
			}
		}
	}

	if *benchOut != "" {
		if *benchOut == "-" {
			fmt.Print(bench.String())
		} else if err := os.WriteFile(*benchOut, bench.Bytes(), 0o644); err != nil {
			return fail(err)
		}
	}
	return gate
}

// spawnDaemon builds (if needed) and starts a managed tinyevm-serve.
func spawnDaemon(ctx context.Context, bin, dataDir, provider, extra string) (*load.Daemon, error) {
	if bin == "" {
		tmp, err := os.MkdirTemp("", "tinyevm-load-bin-")
		if err != nil {
			return nil, err
		}
		fmt.Fprintln(os.Stderr, "tinyevm-load: building tinyevm-serve...")
		bin, err = load.BuildServeBinary("", tmp)
		if err != nil {
			return nil, err
		}
	}
	if dataDir == "" {
		var err error
		dataDir, err = os.MkdirTemp("", "tinyevm-load-wal-")
		if err != nil {
			return nil, err
		}
	}
	addr, err := load.FreeAddr()
	if err != nil {
		return nil, err
	}
	d := &load.Daemon{Bin: bin, Addr: addr, DataDir: dataDir, Provider: provider, Log: os.Stderr}
	if extra != "" {
		d.ExtraArgs = append(d.ExtraArgs, splitArgs(extra)...)
	}
	if err := d.Start(); err != nil {
		return nil, err
	}
	readyCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := d.WaitReady(readyCtx); err != nil {
		d.Stop()
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "tinyevm-load: daemon ready at %s (wal: %s)\n", d.URL(), dataDir)
	return d, nil
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, f := range bytes.Split([]byte(s), []byte(",")) {
		if item := string(bytes.TrimSpace(f)); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// splitArgs splits on spaces (no quoting; daemon flags are simple).
func splitArgs(s string) []string {
	var out []string
	for _, f := range bytes.Fields([]byte(s)) {
		out = append(out, string(f))
	}
	return out
}

// writeContractBench emits one bench line per contract scenario:
// per-tx cost, block-seal latency quantiles, throughput and gas.
func writeContractBench(w *bytes.Buffer, res *eval.WorkloadResult) {
	p50, p95, _ := res.BlockLatency.QuantilesMS()
	perTx := float64(res.Elapsed.Nanoseconds()) / float64(res.Txs)
	fmt.Fprintf(w, "BenchmarkLoadContract/%s %d %.0f ns/op %.3f p50-block-ms %.3f p95-block-ms %.1f tx/s %.0f gas/tx\n",
		res.Name, res.Txs, perTx, p50, p95, res.TxPerSec, res.GasPerTx)
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "tinyevm-load: %v\n", err)
	return 1
}

// Command benchtables regenerates every table and figure of the paper's
// evaluation section (§VI) from the simulation:
//
//	benchtables -all                # everything (default corpus 7000, 200 rounds)
//	benchtables -table 2 -n 7000    # Table II only
//	benchtables -fig 3a             # Figure 3a only
//	benchtables -ablations          # the DESIGN.md §5 ablation studies
//	benchtables -engine             # parallel-engine throughput table
//
// The output is plain text in the layout of the paper's artifacts so the
// two can be compared side by side; EXPERIMENTS.md records one such run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"tinyevm/internal/eval"
)

func main() {
	var (
		table     = flag.String("table", "", "table to produce: 1, 2, 3, 4 or 5")
		fig       = flag.String("fig", "", "figure to produce: 3a, 3b, 3c, 4 or 5")
		all       = flag.Bool("all", false, "produce every table and figure")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		n         = flag.Int("n", 7000, "corpus size for Table II / Figures 3-4")
		reps      = flag.Int("reps", 200, "repetitions for Table IV / Figure 5")
		quiet     = flag.Bool("q", false, "suppress progress output")

		engineRun     = flag.Bool("engine", false, "run the parallel-engine throughput experiment")
		engineDevices = flag.Int("engine-devices", 64, "engine experiment: number of devices")
		engineTxs     = flag.Int("engine-txs", 8, "engine experiment: transactions per device")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the run cleanly between units of work
	// instead of leaving a half-written report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if !*all && *table == "" && *fig == "" && !*ablations && !*engineRun {
		*all = true
	}

	needCorpus := *all || *table == "2" || *fig == "3a" || *fig == "3b" || *fig == "3c" || *fig == "4"
	needRounds := *all || *table == "4" || *fig == "5"

	var corpusRep eval.CorpusReport
	if needCorpus {
		progress := func(done int) {
			if !*quiet && done%500 == 0 {
				fmt.Fprintf(os.Stderr, "  corpus: %d/%d deployed\n", done, *n)
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "deploying %d synthetic contracts...\n", *n)
		}
		corpusRep = eval.RunCorpus(ctx, *n, progress)
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "benchtables: interrupted")
			os.Exit(130)
		}
	}

	var roundRep *eval.RoundReport
	if needRounds {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %d off-chain rounds...\n", *reps)
		}
		var err error
		roundRep, err = eval.RunRounds(ctx, *reps)
		if err != nil {
			code := 1
			if errors.Is(err, context.Canceled) {
				code = 130
			}
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(code)
		}
	}

	section := func(title string) { fmt.Printf("\n======== %s ========\n\n", title) }

	if *all || *table == "1" {
		section("Table I: EVM vs TinyEVM specification")
		fmt.Print(eval.RunTableI().String())
	}
	if *all || *fig == "3a" {
		section("Figure 3a")
		fmt.Print(corpusRep.Fig3a())
	}
	if *all || *fig == "3b" {
		section("Figure 3b")
		fmt.Print(corpusRep.Fig3b())
	}
	if *all || *fig == "3c" {
		section("Figure 3c")
		fmt.Print(corpusRep.Fig3c())
	}
	if *all || *fig == "4" {
		section("Figure 4")
		fmt.Print(corpusRep.Fig4())
	}
	if *all || *table == "2" {
		section("Table II: deployment statistics")
		fmt.Print(corpusRep.TableII())
	}
	if *all || *table == "3" {
		section("Table III: memory footprint")
		fmt.Print(eval.RunTableIII().String())
	}
	if *all || *table == "5" {
		section("Table V: cryptographic operations")
		fmt.Print(eval.RunTableV().String())
	}
	if *all || *table == "4" {
		section("Table IV: off-chain round energy")
		fmt.Print(roundRep.TableIV())
		fmt.Println()
		fmt.Print(roundRep.BatterySummary())
	}
	if *all || *fig == "5" {
		section("Figure 5")
		fmt.Print(roundRep.Fig5())
	}
	if *all || *ablations {
		section("Ablation: word width")
		fmt.Print(eval.RenderWordWidthAblation(eval.RunWordWidthAblation()))
		section("Ablation: storage budget")
		fmt.Print(eval.RenderStorageAblation(eval.RunStorageAblation(800)))
		section("Ablation: memory limit")
		fmt.Print(eval.RenderMemoryAblation(eval.RunMemoryAblation(800)))
		section("Comparison: IoT opcode vs oracle")
		cmp, err := eval.RunOracleComparison()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: oracle comparison: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(cmp.String())
		section("Extension: payment routing")
		var routes []*eval.RoutingReport
		for _, hops := range []int{1, 2, 3, 4} {
			r, err := eval.RunRouting(hops)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: routing: %v\n", err)
				os.Exit(1)
			}
			routes = append(routes, r)
		}
		fmt.Print(eval.RenderRouting(routes))
	}
	if *all || *engineRun {
		section("Parallel execution engine throughput")
		p := eval.DefaultEngineWorkload()
		p.Devices = *engineDevices
		p.TxPerDevice = *engineTxs
		rep, err := eval.RunEngineThroughput(ctx, p, []int{1, 4, 16})
		if err != nil {
			code := 1
			if errors.Is(err, context.Canceled) {
				code = 130
			}
			fmt.Fprintf(os.Stderr, "benchtables: engine: %v\n", err)
			os.Exit(code)
		}
		fmt.Print(rep.String())
		for _, row := range rep.Rows {
			if !row.Identical {
				fmt.Fprintf(os.Stderr, "benchtables: engine: receipts diverged at %d workers\n", row.Workers)
				os.Exit(1)
			}
		}
	}
}

// Command corpusgen emits the synthetic smart-contract corpus used by
// the evaluation (the stand-in for the paper's 7,000 Etherscan-verified
// contracts):
//
//	corpusgen -n 7000 -out corpus/            # one .hex file per contract
//	corpusgen -n 100 -manifest                # print the manifest only
//
// The corpus is deterministic for a given -seed, so experiments are
// byte-reproducible.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tinyevm/internal/corpus"
)

func main() {
	var (
		n        = flag.Int("n", 7000, "number of contracts")
		seed     = flag.Int64("seed", 42, "generator seed")
		out      = flag.String("out", "", "directory to write .hex files into")
		manifest = flag.Bool("manifest", false, "print the manifest (index, size, workload profile)")
	)
	flag.Parse()

	params := corpus.DefaultParams(*n)
	params.Seed = *seed
	contracts := corpus.Generate(params)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, c := range contracts {
			name := filepath.Join(*out, fmt.Sprintf("contract-%05d.hex", c.Index))
			data := hex.EncodeToString(c.InitCode) + "\n"
			if err := os.WriteFile(name, []byte(data), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d contracts to %s\n", len(contracts), *out)
	}

	if *manifest || *out == "" {
		fmt.Printf("%-8s %8s %8s %8s %8s %8s %8s\n",
			"index", "bytes", "runtime", "loops", "keccaks", "slots", "depth")
		for _, c := range contracts {
			fmt.Printf("%-8d %8d %8d %8d %8d %8d %8d\n",
				c.Index, len(c.InitCode), c.RuntimeSize, c.Loops, c.Keccaks, c.StorageSlots, c.StackDepth)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
	os.Exit(1)
}

// Command linkcheck validates markdown cross-references offline: every
// relative link in the given files (and every .md file under given
// directories) must point at an existing file, and every fragment
// (`file.md#section`, `#section`) must match a heading in the target,
// using GitHub's anchor slug rules. External http(s)/mailto links are
// not fetched — CI must not depend on the network — only checked for
// empty targets.
//
//	go run ./cmd/linkcheck README.md docs/
//
// Exit status 1 lists every broken link with file:line.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline links [text](target); images share the syntax.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md|dir>...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			fatal("%v", err)
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return err
		})
		if err != nil {
			fatal("%v", err)
		}
	}

	broken := 0
	for _, file := range files {
		for _, b := range checkFile(file) {
			fmt.Fprintln(os.Stderr, b)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken links in %d files\n", broken, len(files))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d files clean\n", len(files))
}

func checkFile(file string) (broken []string) {
	data, err := os.ReadFile(file)
	if err != nil {
		fatal("%v", err)
	}
	lines := strings.Split(string(data), "\n")
	inFence := false
	for i, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if msg := checkTarget(file, target); msg != "" {
				broken = append(broken, fmt.Sprintf("%s:%d: %s", file, i+1, msg))
			}
		}
	}
	return broken
}

func checkTarget(fromFile, target string) string {
	switch {
	case target == "":
		return "empty link target"
	case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external; not fetched
	}
	path, frag, _ := strings.Cut(target, "#")
	dest := fromFile
	if path != "" {
		dest = filepath.Join(filepath.Dir(fromFile), path)
		info, err := os.Stat(dest)
		if err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, dest)
		}
		if info.IsDir() || frag == "" {
			return ""
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(dest, ".md") {
		return "" // fragments into non-markdown files are not checked
	}
	anchors, err := anchorsOf(dest)
	if err != nil {
		return err.Error()
	}
	if !anchors[strings.ToLower(frag)] {
		return fmt.Sprintf("broken anchor %q: no heading #%s in %s", target, frag, dest)
	}
	return ""
}

// anchorsOf returns the GitHub anchor slugs of every heading in a
// markdown file (duplicate slugs get -1, -2, ... suffixes).
func anchorsOf(file string) (map[string]bool, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, fmt.Errorf("reading link target: %w", err)
	}
	anchors := make(map[string]bool)
	seen := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		if n, dup := seen[slug]; dup {
			seen[slug] = n + 1
			slug = fmt.Sprintf("%s-%d", slug, n)
		} else {
			seen[slug] = 1
		}
		anchors[slug] = true
	}
	return anchors, nil
}

// slugify applies GitHub's heading-to-anchor rules: strip markdown
// emphasis/code/link syntax, lowercase, drop punctuation, spaces to
// hyphens.
func slugify(heading string) string {
	// Inline links keep only their text.
	heading = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`).ReplaceAllString(heading, "$1")
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == '-':
			b.WriteRune('-')
		case r == '_':
			b.WriteRune('_')
			// Everything else (backticks, punctuation, slashes) drops.
		}
	}
	return b.String()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "linkcheck: "+format+"\n", args...)
	os.Exit(2)
}

// Command benchreport runs the repository's core benchmarks and emits a
// machine-readable report (ns/op, B/op, allocs/op and custom metrics
// per benchmark), optionally comparing it against a committed baseline
// and failing on regression. It is the measurement backbone behind the
// BENCH_<n>.json artifacts and the CI bench-gate job:
//
//	go run ./cmd/benchreport -out BENCH_3.json
//	go run ./cmd/benchreport -compare testdata/bench-baseline.json
//	go run ./cmd/benchreport -write-baseline testdata/bench-baseline.json
//
// The gate fails (exit 1) when any gated benchmark regresses by more
// than -threshold (default 25%) in a gated metric (-gate-metrics;
// ns/op and allocs/op by default, custom units like steps/s gate on
// drops) relative to the baseline. Escape hatches, in order of
// preference:
//
//  1. Intentional perf change: refresh the baseline with
//     -write-baseline and commit it alongside the change.
//  2. One-off skip: -allow-regression (or BENCH_GATE_SKIP=1 in the
//     environment) reports regressions but exits 0. CI also skips the
//     gate when the commit message contains [bench-skip].
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// defaultBench selects the core engine/interpreter benchmarks (jump
// table, journaled snapshots), the table-2 corpus deployment
// throughput, cluster block replication over the in-process transport,
// the sharded-service payment throughput over the in-process batch-RPC
// gateway (10k concurrent channels), and cold-start recovery replay
// (full vs checkpointed, recovery_ms).
const defaultBench = "^(BenchmarkEngineMineBlock|BenchmarkEVMTransferCall|BenchmarkInterpreterThroughput|BenchmarkSnapshotRevert|BenchmarkTableII_Fig3_Fig4_Deploy|BenchmarkClusterGossipThroughput|BenchmarkShardedServiceThroughput|BenchmarkRecoveryReplay)$"

// gatedBench selects the benchmarks the regression gate enforces: the
// engine and interpreter hot paths, including the journaled
// snapshot/revert machinery every CALL/CREATE frame pays for, gossip
// replication end to end, the sharded service hot path (its allocs/op
// is the canary for accidental per-payment overhead on the striped
// gateway path), and the checkpointed cold-start (its ns/op is the
// restart-time promise: checkpoint load + bounded tail replay, never
// full history). The corpus benchmark and the full-replay recovery
// variants are reported but not gated (the former's ns/op is dominated
// by the simulated device clock; the latter scale with history length
// by design).
const gatedBench = "^(BenchmarkEngineMineBlock|BenchmarkEVMTransferCall|BenchmarkInterpreterThroughput|BenchmarkSnapshotRevert|BenchmarkClusterGossipThroughput|BenchmarkShardedServiceThroughput|BenchmarkRecoveryReplay/checkpointed)"

// Report is the machine-readable artifact (BENCH_<n>.json schema).
type Report struct {
	Schema      string      `json:"schema"`
	GoVersion   string      `json:"go_version"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	GeneratedAt string      `json:"generated_at"`
	BenchArgs   string      `json:"bench_args"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// Benchmark is one measured benchmark (averaged over -count runs).
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// so reports compare across machines with different core counts.
	Name string `json:"name"`
	// Iters is the total number of benchmark iterations measured.
	Iters int64 `json:"iters"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard testing
	// metrics; custom b.ReportMetric units land in Metrics.
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		bench     = flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime value (time-based keeps micro-benchmarks statistically stable)")
		count     = flag.Int("count", 1, "go test -count value; runs are averaged")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "", "write the JSON report to this path")
		compare   = flag.String("compare", "", "baseline JSON report to gate against")
		threshold = flag.Float64("threshold", 0.25, "max allowed fractional regression in ns/op or allocs/op")
		baseline  = flag.String("write-baseline", "", "write the measured report as the new baseline to this path")
		allowRegr = flag.Bool("allow-regression", false, "report regressions but exit 0 (escape hatch)")
		rawIn     = flag.String("parse", "", "parse an existing `go test -bench` output file instead of running benchmarks")
		quietMode = flag.Bool("q", false, "suppress the raw benchmark output")
		gatePat   = flag.String("gate", gatedBench, "regex of benchmark names the regression gate enforces")
		gateUnits = flag.String("gate-metrics", "ns/op,allocs/op", "comma-separated metrics the gate enforces; custom b.ReportMetric units are looked up in each benchmark's metrics map, and units ending in /s (throughput, e.g. steps/s) gate on decreases instead of increases; use allocs/op alone when the baseline was measured on different hardware (allocs are machine-deterministic, wall time is not)")
		profile   = flag.Bool("profile-ops", false, "run the benchmarks with TINYEVM_PROFILE_OPS=1 so the interpreter reports per-opcode and per-superinstruction hit counts as custom metrics")
	)
	flag.Parse()

	var (
		output []byte
		err    error
	)
	benchArgs := fmt.Sprintf("-bench %s -benchtime %s -count %d -benchmem %s", *bench, *benchtime, *count, *pkg)
	if *rawIn != "" {
		output, err = os.ReadFile(*rawIn)
		if err != nil {
			fatal("read %s: %v", *rawIn, err)
		}
	} else {
		fmt.Fprintf(os.Stderr, "benchreport: go test %s\n", benchArgs)
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", *bench, "-benchtime", *benchtime,
			"-count", strconv.Itoa(*count), "-benchmem", *pkg)
		cmd.Stderr = os.Stderr
		if *profile {
			cmd.Env = append(os.Environ(), "TINYEVM_PROFILE_OPS=1")
		}
		output, err = cmd.Output()
		if err != nil {
			os.Stderr.Write(output)
			fatal("go test -bench failed: %v", err)
		}
	}
	if !*quietMode {
		os.Stdout.Write(output)
	}

	rep := Report{
		Schema:      "tinyevm-bench/v1",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		BenchArgs:   benchArgs,
		Benchmarks:  parseBenchOutput(string(output)),
	}
	if len(rep.Benchmarks) == 0 {
		fatal("no benchmark results parsed")
	}

	for _, path := range []string{*out, *baseline} {
		if path == "" {
			continue
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal: %v", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal("write %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benchmarks)\n", path, len(rep.Benchmarks))
	}

	if *compare == "" {
		return
	}
	base, err := loadReport(*compare)
	if err != nil {
		fatal("load baseline %s: %v", *compare, err)
	}
	gateRe, err := regexp.Compile(*gatePat)
	if err != nil {
		fatal("bad -gate regex: %v", err)
	}
	units := map[string]bool{}
	for _, u := range strings.Split(*gateUnits, ",") {
		if u = strings.TrimSpace(u); u != "" {
			units[u] = true
		}
	}
	regressions := compareReports(base, &rep, gateRe, units, *threshold)
	for _, r := range regressions {
		fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r)
	}
	if len(regressions) == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: gate clean against %s (threshold %.0f%%)\n", *compare, *threshold*100)
		return
	}
	if *allowRegr || os.Getenv("BENCH_GATE_SKIP") == "1" {
		fmt.Fprintf(os.Stderr, "benchreport: %d regression(s) IGNORED (escape hatch active)\n", len(regressions))
		return
	}
	fmt.Fprintf(os.Stderr, "benchreport: %d regression(s) over the %.0f%% threshold; refresh the baseline with -write-baseline if intentional\n",
		len(regressions), *threshold*100)
	os.Exit(1)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
	os.Exit(1)
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// gomaxprocsSuffix matches the trailing -N suffix go test appends to
// benchmark names when GOMAXPROCS > 1.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// stripCommonSuffix removes the -GOMAXPROCS suffix so results compare
// across machines with different core counts. Because sub-benchmark
// names can legitimately end in -N (workers-4), the suffix is stripped
// only when every parsed name carries the identical one — which is
// exactly how go test appends it (all lines or none).
func stripCommonSuffix(names []string) []string {
	if len(names) == 0 {
		return names
	}
	suffix := gomaxprocsSuffix.FindString(names[0])
	if suffix == "" {
		return names
	}
	for _, n := range names {
		if !strings.HasSuffix(n, suffix) {
			return names
		}
	}
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = strings.TrimSuffix(n, suffix)
	}
	return out
}

// parseBenchOutput parses standard `go test -bench -benchmem` output
// lines into Benchmark records, averaging repeated runs (-count > 1).
func parseBenchOutput(out string) []Benchmark {
	type rawLine struct {
		name   string
		iters  int64
		fields []string
	}
	var lines []rawLine
	var names []string
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		lines = append(lines, rawLine{name: fields[0], iters: iters, fields: fields[2:]})
		names = append(names, fields[0])
	}
	names = stripCommonSuffix(names)

	type acc struct {
		b Benchmark
		n int
	}
	byName := map[string]*acc{}
	var order []string
	for i, l := range lines {
		name := names[i]
		a, ok := byName[name]
		if !ok {
			a = &acc{b: Benchmark{Name: name, Metrics: map[string]float64{}}}
			byName[name] = a
			order = append(order, name)
		}
		a.n++
		a.b.Iters += l.iters
		// Fields come in (value, unit) pairs.
		for i := 0; i+1 < len(l.fields); i += 2 {
			v, err := strconv.ParseFloat(l.fields[i], 64)
			if err != nil {
				continue
			}
			switch l.fields[i+1] {
			case "ns/op":
				a.b.NsPerOp += v
			case "B/op":
				a.b.BytesPerOp += v
			case "allocs/op":
				a.b.AllocsPerOp += v
			default:
				a.b.Metrics[l.fields[i+1]] += v
			}
		}
	}
	benchmarks := make([]Benchmark, 0, len(order))
	for _, name := range order {
		a := byName[name]
		a.b.NsPerOp /= float64(a.n)
		a.b.BytesPerOp /= float64(a.n)
		a.b.AllocsPerOp /= float64(a.n)
		for k := range a.b.Metrics {
			a.b.Metrics[k] /= float64(a.n)
		}
		if len(a.b.Metrics) == 0 {
			a.b.Metrics = nil
		}
		benchmarks = append(benchmarks, a.b)
	}
	return benchmarks
}

// compareReports returns one message per gated benchmark whose gated
// metrics (ns/op and/or allocs/op, per units) regressed past the
// threshold relative to base. Benchmarks missing from either side are
// reported informationally but never fail the gate (new benchmarks
// must be allowed to land).
func compareReports(base, cur *Report, gate *regexp.Regexp, units map[string]bool, threshold float64) []string {
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var regressions []string
	names := make([]string, 0, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	curBy := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	for _, name := range names {
		b := curBy[name]
		if !gate.MatchString(name) {
			continue
		}
		old, ok := baseBy[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchreport: %s not in baseline (new benchmark, not gated)\n", name)
			continue
		}
		for unit := range units {
			var oldV, curV float64
			switch unit {
			case "ns/op":
				oldV, curV = old.NsPerOp, b.NsPerOp
			case "B/op":
				oldV, curV = old.BytesPerOp, b.BytesPerOp
			case "allocs/op":
				oldV, curV = old.AllocsPerOp, b.AllocsPerOp
			default:
				// Custom b.ReportMetric units (steps/s, payments/s, ...).
				// A benchmark that doesn't report the unit has no entry on
				// either side and is skipped by the oldV <= 0 guard.
				oldV, curV = old.Metrics[unit], b.Metrics[unit]
			}
			regressions = append(regressions, checkMetric(name, unit, oldV, curV, threshold)...)
		}
	}
	sort.Strings(regressions)
	return regressions
}

// checkMetric flags a regression past the threshold. Units ending in
// "/s" are throughputs where higher is better (a regression is a drop);
// every other unit is a cost where lower is better.
func checkMetric(name, unit string, old, cur, threshold float64) []string {
	if old <= 0 {
		return nil
	}
	ratio := cur / old
	if strings.HasSuffix(unit, "/s") {
		if ratio < 1-threshold {
			return []string{fmt.Sprintf("%s: %s %.6g -> %.6g (%+.1f%%, threshold -%.0f%%)",
				name, unit, old, cur, (ratio-1)*100, threshold*100)}
		}
		return nil
	}
	if ratio > 1+threshold {
		return []string{fmt.Sprintf("%s: %s %.6g -> %.6g (%+.1f%%, threshold %.0f%%)",
			name, unit, old, cur, (ratio-1)*100, threshold*100)}
	}
	return nil
}

// Quickstart: deploy and call a smart contract on a simulated TinyEVM
// IoT device through the context-aware Service API.
//
//	go run ./examples/quickstart
//
// The example assembles a small contract whose constructor reads the
// device's temperature sensor through the IoT opcode (0x0C) and whose
// runtime returns the stored reading — the essence of the paper's
// Listing 2 — then deploys and calls it, printing the on-device cost of
// each step.
package main

import (
	"context"
	"fmt"
	"log"

	"tinyevm"
)

func main() {
	ctx := context.Background()

	// A service wraps a simulated main chain plus a TSCH radio network;
	// the provider node is created with it. Every operation takes a
	// context and is safe for concurrent use.
	svc, node, err := tinyevm.NewService("demo-node")
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// Give the device a temperature sensor: 21.5 degrees, in centi-C.
	node.RegisterSensor(tinyevm.SensorTemperature, func(param uint64) (uint64, error) {
		return 2150, nil
	})

	// The paper's Listing 2 contract: constructor stores the parties and
	// a sensor reading taken with the IoT opcode.
	init := tinyevm.PaymentChannelInitCode(
		node.Address(), node.Address(), tinyevm.SensorTemperature, 0)

	fmt.Println("deploying the payment-channel contract on the device...")
	res, err := node.DeployContract(ctx, init)
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatalf("deployment failed: %v", res.Err)
	}
	fmt.Printf("  address          %s\n", res.Address)
	fmt.Printf("  bytecode         %d bytes (constructor) -> %d bytes (runtime)\n",
		res.BytecodeSize, res.RuntimeSize)
	fmt.Printf("  memory high-water %d bytes (cap 8192)\n", res.MemoryUsage)
	fmt.Printf("  max stack pointer %d words (cap 96)\n", res.MaxStackPointer)
	fmt.Printf("  device time      %s (paper mean: 215 ms for 4 KB contracts)\n\n", res.Time)

	fmt.Println("calling sensorData()...")
	out, err := node.CallContract(ctx, res.Address, tinyevm.Calldata("sensorData()"), 0)
	if err != nil {
		log.Fatal(err)
	}
	if out.Err != nil {
		log.Fatalf("call failed: %v", out.Err)
	}
	reading := uint64(out.ReturnData[30])<<8 | uint64(out.ReturnData[31])
	fmt.Printf("  sensor reading   %d.%02d C (stored by the constructor via opcode 0x0C)\n",
		reading/100, reading%100)
	fmt.Printf("  execution        %d VM steps in %s\n\n", out.Stats.Steps, out.Time)

	rep, err := node.EnergyReport(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("device energy so far:")
	fmt.Print(rep.String())
}

// Payment routing: multi-hop payments across TinyEVM nodes — the
// paper's future-work direction, built on the hash-lock primitive its
// background section describes.
//
//	go run ./examples/payment-routing
//
// A smart car has a channel with a roadside hub; the hub has a channel
// with a charging station. The car pays the station WITHOUT a direct
// channel: a hash-locked conditional payment propagates forward, the
// station's secret propagates backward, and every hop settles atomically.
// The hub earns a forwarding fee and never risks its own funds.
package main

import (
	"fmt"
	"log"

	"tinyevm"
)

func main() {
	sys, hub, err := tinyevm.NewSystem(tinyevm.DefaultConfig(), "roadside-hub")
	if err != nil {
		log.Fatal(err)
	}
	car, err := sys.AddNode("smart-car")
	if err != nil {
		log.Fatal(err)
	}
	station, err := sys.AddNode("charging-station")
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []*tinyevm.Node{hub, car, station} {
		n.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) { return 2000, nil })
	}

	// Channel topology: car -> hub -> station.
	carHub, err := car.OpenChannel(hub.Address(), 1_000_000, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := hub.AcceptChannel(); err != nil {
		log.Fatal(err)
	}
	hubStation, err := hub.OpenChannel(station.Address(), 1_000_000, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := station.AcceptChannel(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("channels: car -> hub, hub -> station (no direct car -> station)")

	const amount, fee = 50_000, 1_000
	route := []tinyevm.RouteHop{
		{From: car.Party, ChannelID: carHub.ID},
		{From: hub.Party, ChannelID: hubStation.ID},
	}

	fmt.Printf("\nrouting %d wei from car to station (hub fee %d)...\n", amount, fee)
	lock, err := tinyevm.RoutePayment(route, station, amount, fee)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hash lock %s resolved — all hops settled atomically\n\n", lock)

	carCS, _ := car.Channel(carHub.ID)
	stationCS, _ := station.Channel(hubStation.ID)
	hubIn, _ := hub.Channel(carHub.ID)
	hubOut, _ := hub.Channel(hubStation.ID)

	fmt.Printf("car paid        %6d wei (amount + fee)\n", carCS.Cumulative)
	fmt.Printf("station got     %6d wei\n", stationCS.Cumulative)
	fmt.Printf("hub earned      %6d wei (in %d - out %d)\n",
		hubIn.Cumulative-hubOut.Cumulative, hubIn.Cumulative, hubOut.Cumulative)

	fmt.Println("\nper-device energy for the routed payment:")
	for _, n := range []*tinyevm.Node{car, hub, station} {
		rep := n.EnergyReport()
		fmt.Printf("  %-18s %6.1f mJ (crypto %5.1f mJ)\n",
			n.Name(), rep.TotalEnergyMJ, rep.Rows[0].EnergyMJ)
	}
	fmt.Println("\nthe hub verified one inbound signature and produced one outbound —")
	fmt.Println("forwarding costs it ~2x a direct payment, paid for by the fee.")
}

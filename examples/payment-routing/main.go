// Payment routing: multi-hop payments across TinyEVM nodes — the
// paper's future-work direction, built on the hash-lock primitive its
// background section describes — driven through the Service API.
//
//	go run ./examples/payment-routing
//
// A smart car has a channel with a roadside hub; the hub has a channel
// with a charging station. The car pays the station WITHOUT a direct
// channel: a hash-locked conditional payment propagates forward, the
// station's secret propagates backward, and every hop settles atomically.
// The hub earns a forwarding fee and never risks its own funds.
package main

import (
	"context"
	"fmt"
	"log"

	"tinyevm"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	svc, hub, err := tinyevm.NewService("roadside-hub")
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	car, err := svc.AddNode(ctx, "smart-car")
	if err != nil {
		log.Fatal(err)
	}
	station, err := svc.AddNode(ctx, "charging-station")
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []*tinyevm.ServiceNode{hub, car, station} {
		n.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) { return 2000, nil })
	}

	// The station learns its inbound channel handle from its own stream.
	stationEvents := station.Subscribe(ctx)

	// Channel topology: car -> hub -> station.
	carHub, err := car.OpenChannel(ctx, hub.Address(), 1_000_000, 0)
	if err != nil {
		log.Fatal(err)
	}
	hubStation, err := hub.OpenChannel(ctx, station.Address(), 1_000_000, 0)
	if err != nil {
		log.Fatal(err)
	}
	var stationIn tinyevm.Event
	for e := range stationEvents {
		if e.Type == tinyevm.EventChannelOpened {
			stationIn = e
			break
		}
	}
	fmt.Println("channels: car -> hub, hub -> station (no direct car -> station)")

	const amount, fee = 50_000, 1_000
	route := []tinyevm.RouteStep{
		{Node: "smart-car", Channel: carHub.ID},
		{Node: "roadside-hub", Channel: hubStation.ID},
	}

	fmt.Printf("\nrouting %d wei from car to station (hub fee %d)...\n", amount, fee)
	lock, err := svc.RoutePayment(ctx, route, "charging-station", amount, fee)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hash lock %s resolved — all hops settled atomically\n\n", lock)

	carCS, _, _ := car.Channel(ctx, carHub.ID)
	stationCS, _, _ := station.Channel(ctx, stationIn.Channel)
	hubChans, err := hub.Channels(ctx)
	if err != nil {
		log.Fatal(err)
	}
	var hubIn, hubOut tinyevm.ChannelState
	for _, cs := range hubChans {
		if cs.Peer == car.Address() {
			hubIn = cs
		}
		if cs.Peer == station.Address() {
			hubOut = cs
		}
	}

	fmt.Printf("car paid        %6d wei (amount + fee)\n", carCS.Cumulative)
	fmt.Printf("station got     %6d wei\n", stationCS.Cumulative)
	fmt.Printf("hub earned      %6d wei (in %d - out %d)\n",
		hubIn.Cumulative-hubOut.Cumulative, hubIn.Cumulative, hubOut.Cumulative)

	fmt.Println("\nper-device energy for the routed payment:")
	for _, n := range []*tinyevm.ServiceNode{car, hub, station} {
		rep, err := n.EnergyReport(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %6.1f mJ (crypto %5.1f mJ)\n",
			n.Name(), rep.TotalEnergyMJ, rep.Rows[0].EnergyMJ)
	}
	fmt.Println("\nthe hub verified one inbound signature and produced one outbound —")
	fmt.Println("forwarding costs it ~2x a direct payment, paid for by the fee.")
}

// Sensor oracle: contracts that sense and actuate through the IoT
// opcode 0x0C — the paper's answer to Ethereum's oracle problem —
// driven through the context-aware Service API.
//
//	go run ./examples/sensor-oracle
//
// The example assembles a custom climate-guard contract directly from
// EVM assembly: on every call it reads the temperature sensor, stores
// the reading, and drives an actuator (a fan) when the reading crosses a
// threshold. No third-party oracle is involved: "the smart contract can
// have access directly to the sensors and actuators of the IoT device".
package main

import (
	"context"
	"fmt"
	"log"

	"tinyevm"
)

// climateGuard returns runtime assembly for a contract that reads
// SensorTemperature (id 0x01), stores it at slot 0, and sets actuator
// 0x81 (LED/fan) to 1 when the reading exceeds the threshold, 0
// otherwise. It returns the reading.
const climateGuard = `
	; reading = SENSOR(temperature, 0)
	PUSH1 0x00      ; param
	PUSH1 0x01      ; sensor id (popped first)
	SENSOR
	DUP1
	PUSH1 0x00
	SSTORE          ; store reading at slot 0

	; fan = reading > 2500 ? 1 : 0
	DUP1            ; [reading, reading]
	PUSH2 0x09c4    ; 2500 (25.00 C)
	SWAP1           ; [reading, 2500, reading]
	GT              ; [reading, reading>2500]
	PUSH1 0x81      ; actuator id on top: SENSOR(id=0x81, param=flag)
	SENSOR          ; actuate; pushes an ack we discard
	POP             ; [reading]

	; return the reading
	PUSH1 0x00
	MSTORE
	PUSH1 0x20
	PUSH1 0x00
	RETURN
`

func main() {
	ctx := context.Background()
	svc, node, err := tinyevm.NewService("greenhouse-node")
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// A temperature that rises on every reading, and a fan actuator
	// whose state we observe from the host side.
	temp := uint64(2300)
	node.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) {
		temp += 150
		return temp, nil
	})
	fan := uint64(0)
	node.RegisterSensor(tinyevm.ActuatorLED, func(setpoint uint64) (uint64, error) {
		fan = setpoint
		return setpoint, nil // acknowledge
	})

	runtime, err := tinyevm.Assemble(climateGuard)
	if err != nil {
		log.Fatalf("assembling: %v", err)
	}
	// Wrap in a minimal deployer via the generic quickstart pattern:
	// constructor that returns the runtime bytes.
	init, err := tinyevm.Assemble(fmt.Sprintf(`
		PUSH2 %#04x
		PUSH :rt
		PUSH1 0x00
		CODECOPY
		PUSH2 %#04x
		PUSH1 0x00
		RETURN
		:rt JUMPDEST
	`, len(runtime), len(runtime)))
	if err != nil {
		log.Fatal(err)
	}
	init = append(init[:len(init)-1], runtime...) // replace marker with runtime

	res, err := node.DeployContract(ctx, init)
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatalf("deploy: %v", res.Err)
	}
	fmt.Printf("climate-guard deployed at %s (%d bytes, %s)\n\n",
		res.Address, res.RuntimeSize, res.Time)

	for i := 1; i <= 4; i++ {
		out, err := node.CallContract(ctx, res.Address, nil, 0)
		if err != nil {
			log.Fatal(err)
		}
		if out.Err != nil {
			log.Fatalf("call %d: %v", i, out.Err)
		}
		reading := uint64(out.ReturnData[30])<<8 | uint64(out.ReturnData[31])
		state := "off"
		if fan == 1 {
			state = "ON"
		}
		fmt.Printf("reading %d: %2d.%02d C -> fan %s   (%d VM steps, %s, %d sensor ops)\n",
			i, reading/100, reading%100, state, out.Stats.Steps, out.Time, out.Stats.SensorOps)
	}

	fmt.Println("\nthe contract drove the actuator directly from bytecode — no oracle service.")
}

// Fraud dispute: the paper's security mechanism in action (§V), driven
// through the Service API — the dispute surfaces as an event on the
// subscribe stream when the on-chain template catches the stale commit.
//
//	go run ./examples/fraud-dispute
//
// The car (payer) tries to cheat: after paying for three hours on one
// channel it commits an OLD countersigned checkpoint of that channel to
// the chain, claiming it only owes for one hour. The parking sensor
// detects the stale commit, challenges with the newest state —
// "reporting a signed transaction or state with a higher sequence number
// denotes a valid next state" — and at settlement claims the car's
// remaining deposit as the insurance money.
package main

import (
	"context"
	"fmt"
	"log"

	"tinyevm"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	svc, lot, err := tinyevm.NewService("parking-sensor")
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	car, err := svc.AddNode(ctx, "smart-car")
	if err != nil {
		log.Fatal(err)
	}
	lot.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) { return 2000, nil })
	car.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) { return 2000, nil })

	lotEvents := lot.Subscribe(ctx)

	const deposit = 10_000_000
	if r, err := car.Deposit(ctx, deposit); err != nil || !r.Status {
		log.Fatalf("deposit: %v %v", err, r)
	}

	cs, err := car.OpenChannel(ctx, lot.Address(), deposit, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channel #%d open, %d wei deposited on-chain as insurance\n\n", cs.ID, deposit)

	// Hour 1, then a countersigned checkpoint of the channel state.
	if _, err := car.Pay(ctx, cs.ID, 1_000_000); err != nil {
		log.Fatal(err)
	}
	stale, err := car.Close(ctx, cs.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hour 1: paid 1000000; checkpoint countersigned (seq %d, cumulative %d)\n",
		stale.Seq, stale.Cumulative)

	// Both parties reopen and the parking continues: hours 2 and 3.
	if err := car.Reopen(ctx, cs.ID); err != nil {
		log.Fatal(err)
	}
	if err := lot.Reopen(ctx, cs.ID); err != nil {
		log.Fatal(err)
	}
	for hour := 2; hour <= 3; hour++ {
		if _, err := car.Pay(ctx, cs.ID, 1_000_000); err != nil {
			log.Fatal(err)
		}
	}
	fresh, err := car.Close(ctx, cs.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hours 2-3: paid 2000000 more (final seq %d, cumulative %d)\n\n",
		fresh.Seq, fresh.Cumulative)

	// THE FRAUD: the car commits the old checkpoint and races to exit.
	fmt.Println("FRAUD ATTEMPT: car commits the old 1M-wei checkpoint and requests exit")
	if r, err := car.Commit(ctx, stale); err != nil || !r.Status {
		log.Fatalf("stale commit: %v %v", err, r)
	}
	if r, err := car.Exit(ctx); err != nil || !r.Status {
		log.Fatalf("exit: %v %v", err, r)
	}
	exit, _ := svc.System().Template.Exit()
	fmt.Printf("challenge period open until block %d\n\n", exit.Deadline)

	// THE DEFENSE: the lot uploads the newest state from its own
	// side-chain log during the challenge period. The template catches
	// the superseded commit and raises a dispute event.
	fmt.Println("DEFENSE: lot challenges with the newer signed state (higher sequence number)")
	if r, err := lot.Commit(ctx, fresh); err != nil || !r.Status {
		log.Fatalf("challenge: %v %v", err, r)
	}
	for e := range lotEvents {
		if e.Type == tinyevm.EventDispute {
			fmt.Printf("dispute event: %s cheated on channel %d\n", e.Peer, e.Channel)
			break
		}
	}
	frauds, err := svc.FraudChannels(ctx, car.Address())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fraud recorded against the car on channels %v\n", frauds)
	fmt.Printf("lot's side-chain log verifies: %v\n\n", lot.VerifyLog(ctx) == nil)

	lotBefore, _ := svc.BalanceOf(ctx, lot.Address())
	carBefore, _ := svc.BalanceOf(ctx, car.Address())
	if err := svc.RunChallengePeriod(ctx); err != nil {
		log.Fatal(err)
	}
	r, err := lot.Settle(ctx)
	if err != nil || !r.Status {
		log.Fatalf("settle: %v %v", err, r)
	}
	lotAfter, _ := svc.BalanceOf(ctx, lot.Address())
	carAfter, _ := svc.BalanceOf(ctx, car.Address())

	fmt.Println("settlement:")
	fmt.Printf("  lot received  %+d wei (3M owed + 7M insurance - its own gas)\n",
		int64(lotAfter)-int64(lotBefore))
	fmt.Printf("  car received  %+d wei (deposit forfeited: cheating cost it everything)\n",
		int64(carAfter)-int64(carBefore))
}

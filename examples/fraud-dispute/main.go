// Fraud dispute: the paper's security mechanism in action (§V).
//
//	go run ./examples/fraud-dispute
//
// The car (payer) tries to cheat: after paying for three hours on one
// channel it commits an OLD countersigned checkpoint of that channel to
// the chain, claiming it only owes for one hour. The parking sensor
// detects the stale commit, challenges with the newest state —
// "reporting a signed transaction or state with a higher sequence number
// denotes a valid next state" — and at settlement claims the car's
// remaining deposit as the insurance money.
package main

import (
	"fmt"
	"log"

	"tinyevm"
)

func main() {
	sys, lot, err := tinyevm.NewSystem(tinyevm.DefaultConfig(), "parking-sensor")
	if err != nil {
		log.Fatal(err)
	}
	car, err := sys.AddNode("smart-car")
	if err != nil {
		log.Fatal(err)
	}
	lot.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) { return 2000, nil })
	car.RegisterSensor(tinyevm.SensorTemperature, func(uint64) (uint64, error) { return 2000, nil })

	const deposit = 10_000_000
	if r, err := car.DepositOnChain(sys.Chain, deposit); err != nil || !r.Status {
		log.Fatalf("deposit: %v %v", err, r)
	}

	cs, err := car.OpenChannel(lot.Address(), deposit, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := lot.AcceptChannel(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channel #%d open, %d wei deposited on-chain as insurance\n\n", cs.ID, deposit)

	// Hour 1, then a countersigned checkpoint of the channel state.
	if _, err := car.Pay(cs.ID, 1_000_000); err != nil {
		log.Fatal(err)
	}
	if _, err := lot.ReceivePayment(); err != nil {
		log.Fatal(err)
	}
	if _, err := car.CloseChannel(cs.ID); err != nil {
		log.Fatal(err)
	}
	if _, err := lot.AcceptClose(); err != nil {
		log.Fatal(err)
	}
	stale, err := car.FinishClose()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hour 1: paid 1000000; checkpoint countersigned (seq %d, cumulative %d)\n",
		stale.Seq, stale.Cumulative)

	// Both parties reopen and the parking continues: hours 2 and 3.
	if err := car.Reopen(cs.ID); err != nil {
		log.Fatal(err)
	}
	if err := lot.Reopen(cs.ID); err != nil {
		log.Fatal(err)
	}
	for hour := 2; hour <= 3; hour++ {
		if _, err := car.Pay(cs.ID, 1_000_000); err != nil {
			log.Fatal(err)
		}
		if _, err := lot.ReceivePayment(); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := car.CloseChannel(cs.ID); err != nil {
		log.Fatal(err)
	}
	if _, err := lot.AcceptClose(); err != nil {
		log.Fatal(err)
	}
	fresh, err := car.FinishClose()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hours 2-3: paid 2000000 more (final seq %d, cumulative %d)\n\n",
		fresh.Seq, fresh.Cumulative)

	// THE FRAUD: the car commits the old checkpoint and races to exit.
	fmt.Println("FRAUD ATTEMPT: car commits the old 1M-wei checkpoint and requests exit")
	if r, err := car.CommitOnChain(sys.Chain, stale); err != nil || !r.Status {
		log.Fatalf("stale commit: %v %v", err, r)
	}
	if r, err := car.ExitOnChain(sys.Chain); err != nil || !r.Status {
		log.Fatalf("exit: %v %v", err, r)
	}
	exit, _ := sys.Template.Exit()
	fmt.Printf("challenge period open until block %d\n\n", exit.Deadline)

	// THE DEFENSE: the lot uploads the newest state from its own
	// side-chain log during the challenge period.
	fmt.Println("DEFENSE: lot challenges with the newer signed state (higher sequence number)")
	if r, err := lot.CommitOnChain(sys.Chain, fresh); err != nil || !r.Status {
		log.Fatalf("challenge: %v %v", err, r)
	}
	frauds := sys.Template.FraudChannels(car.Address())
	fmt.Printf("fraud recorded against the car on channels %v\n", frauds)
	fmt.Printf("lot's side-chain log verifies: %v\n\n", lot.Log.Verify() == nil)

	lotBefore := sys.Chain.BalanceOf(lot.Address())
	carBefore := sys.Chain.BalanceOf(car.Address())
	if err := sys.RunChallengePeriod(); err != nil {
		log.Fatal(err)
	}
	r, err := lot.SettleOnChain(sys.Chain)
	if err != nil || !r.Status {
		log.Fatalf("settle: %v %v", err, r)
	}
	lotEarned := int64(sys.Chain.BalanceOf(lot.Address())) - int64(lotBefore)
	carBack := int64(sys.Chain.BalanceOf(car.Address())) - int64(carBefore)

	fmt.Println("settlement:")
	fmt.Printf("  lot received  %+d wei (3M owed + 7M insurance - its own gas)\n", lotEarned)
	fmt.Printf("  car received  %+d wei (deposit forfeited: cheating cost it everything)\n", carBack)
}

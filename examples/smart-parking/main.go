// Smart parking: the paper's full application scenario (§III), driven
// through the event-based Service API — no lockstep pumping: the lot
// observes the car's messages on its Subscribe stream, and every wire
// message is dispatched automatically.
//
//	go run ./examples/smart-parking
//
// A smart car and a parking sensor negotiate over an 802.15.4 TSCH
// link: they exchange sensor data, the car opens an off-chain payment
// channel by executing the factory template on its TinyEVM, pays hourly
// rates derived from the lot's sensors, closes the channel, and the lot
// settles the doubly-signed final state on the simulated main chain
// after the challenge period.
package main

import (
	"context"
	"fmt"
	"log"

	"tinyevm"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	svc, lot, err := tinyevm.NewService("parking-sensor")
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	car, err := svc.AddNode(ctx, "smart-car")
	if err != nil {
		log.Fatal(err)
	}

	// Sensors: the lot knows occupancy and temperature (pricing inputs),
	// the car knows its distance to the spot.
	lot.RegisterSensor(tinyevm.SensorOccupancy, constant(1))
	lot.RegisterSensor(tinyevm.SensorTemperature, constant(2150))
	car.RegisterSensor(tinyevm.SensorTemperature, constant(2150))
	car.RegisterSensor(tinyevm.SensorDistance, constant(35))

	// Both parties watch their event streams instead of polling inboxes.
	lotEvents := lot.Subscribe(ctx)
	carEvents := car.Subscribe(ctx)

	fmt.Println("=== Phase 1: on-chain setup ===")
	const deposit = 5_000_000
	if r, err := car.Deposit(ctx, deposit); err != nil || !r.Status {
		log.Fatalf("deposit failed: %v %v", err, r)
	}
	fmt.Printf("car locked %d wei into the on-chain template\n\n", deposit)

	fmt.Println("=== Phase 2: off-chain channel over the TSCH link ===")
	if _, err := car.SendSensorData(ctx, lot.Address(), tinyevm.SensorTemperature, tinyevm.SensorDistance); err != nil {
		log.Fatal(err)
	}
	if _, err := lot.SendSensorData(ctx, car.Address(), tinyevm.SensorTemperature, tinyevm.SensorOccupancy); err != nil {
		log.Fatal(err)
	}
	// The car learns the lot's occupancy from its own event stream.
	sd := next(carEvents, tinyevm.EventSensorData)
	occupancy := sd.Readings[1].Value
	fmt.Printf("sensor data exchanged (lot occupancy=%d)\n", occupancy)

	cs, err := car.OpenChannel(ctx, lot.Address(), deposit, 0)
	if err != nil {
		log.Fatal(err)
	}
	opened := next(lotEvents, tinyevm.EventChannelOpened)
	fmt.Printf("channel #%d open at %s; lot replicated it as #%d (logical clock = channel id)\n\n",
		cs.ID, cs.Addr, opened.Channel)

	fmt.Println("=== hourly payments (price from sensor context) ===")
	// Hourly rate: base 800k wei, +25% when the lot is busy.
	rate := uint64(800_000)
	if occupancy == 1 {
		rate += 200_000
	}
	for hour := 1; hour <= 3; hour++ {
		if _, err := car.Pay(ctx, cs.ID, rate); err != nil {
			log.Fatal(err)
		}
		e := next(lotEvents, tinyevm.EventPaymentReceived)
		fmt.Printf("hour %d: paid %4d wei  (seq %d, cumulative %d, signed + registered on side-chain)\n",
			hour, e.Amount, e.Seq, e.Payment.Cumulative)
	}

	fmt.Println("\n=== close: exchange signatures on the final state ===")
	final, err := car.Close(ctx, cs.ID)
	if err != nil {
		log.Fatal(err)
	}
	next(lotEvents, tinyevm.EventChannelClosed)
	fmt.Printf("final state: seq %d, cumulative %d wei, both signatures valid\n\n",
		final.Seq, final.Cumulative)

	fmt.Println("=== Phase 3: on-chain commit and settlement ===")
	lotBefore, err := svc.BalanceOf(ctx, lot.Address())
	if err != nil {
		log.Fatal(err)
	}
	if r, err := lot.Commit(ctx, final); err != nil || !r.Status {
		log.Fatalf("commit failed: %v %v", err, r)
	}
	root, _ := svc.System().Template.Root()
	fmt.Printf("state committed: Merkle-sum root %s (sum %d wei)\n", root.Hash, root.Sum)

	if r, err := car.Exit(ctx); err != nil || !r.Status {
		log.Fatalf("exit failed: %v %v", err, r)
	}
	exit, _ := svc.System().Template.Exit()
	fmt.Printf("car requested exit; challenge period until block %d\n", exit.Deadline)
	if err := svc.RunChallengePeriod(ctx); err != nil {
		log.Fatal(err)
	}
	if r, err := lot.Settle(ctx); err != nil || !r.Status {
		log.Fatalf("settle failed: %v %v", err, r)
	}
	lotAfter, err := svc.BalanceOf(ctx, lot.Address())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("settled: lot earned %+d wei net of its gas; unspent deposit refunded to the car\n\n",
		int64(lotAfter)-int64(lotBefore))

	fmt.Println("=== car-side energy for the session ===")
	rep, err := car.EnergyReport(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.String())
	fmt.Println("\nside-chain logs verified:",
		check(car.VerifyLog(ctx)), "(car),", check(lot.VerifyLog(ctx)), "(lot)")
}

// next reads events from the stream until one of the wanted type
// arrives (the service delivers them in order, so this never skips
// meaningful state).
func next(events <-chan tinyevm.Event, want tinyevm.EventType) tinyevm.Event {
	for e := range events {
		if e.Type == want {
			return e
		}
	}
	log.Fatalf("event stream closed waiting for %s", want)
	return tinyevm.Event{}
}

func constant(v uint64) tinyevm.SensorFunc {
	return func(uint64) (uint64, error) { return v, nil }
}

func check(err error) string {
	if err != nil {
		return "BROKEN: " + err.Error()
	}
	return "ok"
}

// Smart parking: the paper's full application scenario (§III).
//
//	go run ./examples/smart-parking
//
// A smart car and a parking sensor negotiate over an 802.15.4 TSCH
// link: they exchange sensor data, the car opens an off-chain payment
// channel by executing the factory template on its TinyEVM, pays hourly
// rates derived from the lot's sensors, closes the channel, and the lot
// settles the doubly-signed final state on the simulated main chain
// after the challenge period.
package main

import (
	"fmt"
	"log"

	"tinyevm"
)

func main() {
	sys, lot, err := tinyevm.NewSystem(tinyevm.DefaultConfig(), "parking-sensor")
	if err != nil {
		log.Fatal(err)
	}
	car, err := sys.AddNode("smart-car")
	if err != nil {
		log.Fatal(err)
	}

	// Sensors: the lot knows occupancy and temperature (pricing inputs),
	// the car knows its distance to the spot.
	lot.RegisterSensor(tinyevm.SensorOccupancy, constant(1))
	lot.RegisterSensor(tinyevm.SensorTemperature, constant(2150))
	car.RegisterSensor(tinyevm.SensorTemperature, constant(2150))
	car.RegisterSensor(tinyevm.SensorDistance, constant(35))

	fmt.Println("=== Phase 1: on-chain setup ===")
	const deposit = 5_000_000
	if r, err := car.DepositOnChain(sys.Chain, deposit); err != nil || !r.Status {
		log.Fatalf("deposit failed: %v %v", err, r)
	}
	fmt.Printf("car locked %d wei into the on-chain template %s\n\n",
		deposit, sys.Template.Addr)

	fmt.Println("=== Phase 2: off-chain channel over the TSCH link ===")
	if _, err := car.SendSensorData(lot.Address(), tinyevm.SensorTemperature, tinyevm.SensorDistance); err != nil {
		log.Fatal(err)
	}
	if _, err := lot.ReceiveSensorData(); err != nil {
		log.Fatal(err)
	}
	sd, err := lot.SendSensorData(car.Address(), tinyevm.SensorTemperature, tinyevm.SensorOccupancy)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := car.ReceiveSensorData(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor data exchanged (lot occupancy=%d)\n", sd.Readings[1].Value)

	cs, err := car.OpenChannel(lot.Address(), deposit, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := lot.AcceptChannel(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channel #%d open at %s (logical clock = channel id)\n\n", cs.ID, cs.Addr)

	fmt.Println("=== hourly payments (price from sensor context) ===")
	// Hourly rate: base 800k wei, +25% when the lot is busy.
	rate := uint64(800_000)
	if sd.Readings[1].Value == 1 {
		rate += 200_000
	}
	for hour := 1; hour <= 3; hour++ {
		pay, err := car.Pay(cs.ID, rate)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := lot.ReceivePayment(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hour %d: paid %4d wei  (seq %d, cumulative %d, signed + registered on side-chain)\n",
			hour, rate, pay.Seq, pay.Cumulative)
	}

	fmt.Println("\n=== close: exchange signatures on the final state ===")
	if _, err := car.CloseChannel(cs.ID); err != nil {
		log.Fatal(err)
	}
	if _, err := lot.AcceptClose(); err != nil {
		log.Fatal(err)
	}
	final, err := car.FinishClose()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final state: seq %d, cumulative %d wei, both signatures valid\n\n",
		final.Seq, final.Cumulative)

	fmt.Println("=== Phase 3: on-chain commit and settlement ===")
	lotBefore := sys.Chain.BalanceOf(lot.Address())
	if r, err := lot.CommitOnChain(sys.Chain, final); err != nil || !r.Status {
		log.Fatalf("commit failed: %v %v", err, r)
	}
	root, _ := sys.Template.Root()
	fmt.Printf("state committed: Merkle-sum root %s (sum %d wei)\n", root.Hash, root.Sum)

	if r, err := car.ExitOnChain(sys.Chain); err != nil || !r.Status {
		log.Fatalf("exit failed: %v %v", err, r)
	}
	exit, _ := sys.Template.Exit()
	fmt.Printf("car requested exit; challenge period until block %d\n", exit.Deadline)
	if err := sys.RunChallengePeriod(); err != nil {
		log.Fatal(err)
	}
	if r, err := lot.SettleOnChain(sys.Chain); err != nil || !r.Status {
		log.Fatalf("settle failed: %v %v", err, r)
	}
	earned := int64(sys.Chain.BalanceOf(lot.Address())) - int64(lotBefore)
	fmt.Printf("settled: lot earned %+d wei net of its gas; unspent deposit refunded to the car\n\n", earned)

	fmt.Println("=== car-side energy for the session ===")
	fmt.Print(car.EnergyReport().String())
	fmt.Println("\nside-chain logs verified:",
		check(car.Log.Verify()), "(car),", check(lot.Log.Verify()), "(lot)")
}

func constant(v uint64) tinyevm.SensorFunc {
	return func(uint64) (uint64, error) { return v, nil }
}

func check(err error) string {
	if err != nil {
		return "BROKEN: " + err.Error()
	}
	return "ok"
}
